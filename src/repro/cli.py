"""Command-line interface: run paper experiments from the shell.

    python -m repro list              # what can be reproduced
    python -m repro run fig12         # one experiment, full trial counts
    python -m repro run all           # the whole evaluation section
    python -m repro run fig13 --trials 5   # quick look

Every ``run`` is instrumented through :mod:`repro.obs`: add ``--trace``
and/or ``--metrics-out`` to dump a JSONL span trace and a metrics
snapshot of the invocation, or ``--obs-summary`` for a human-readable
roll-up after the experiment output.

``--workers N`` executes sweep trials on N processes (see
``docs/PERFORMANCE.md``); results are bitwise identical to serial runs.
``--kernels reference`` swaps the batched array kernels for their
retained loop references — also bitwise identical, useful for isolating
a suspected kernel bug.

``python -m repro faults`` runs a resilience campaign (fault-rate sweep
with degradation curves and the ARQ invariant check), and ``run
--faults SPEC`` runs any experiment under an active fault plan — see
``docs/ROBUSTNESS.md``.

``python -m repro dataset generate`` streams a labeled ML corpus to
sharded NPZ + manifest (byte-identical at any ``--workers``), and
``dataset verify`` re-checks an existing corpus's checksums and schema
— see ``docs/DATASETS.md``.

``python -m repro netsim run`` executes one named fleet scenario on the
discrete-event network simulator (1 AP x 1000 nodes, multi-AP roaming),
and ``netsim matrix`` fans several scenarios across workers into a
comparison table; JSON outputs are byte-identical at any worker count —
see ``docs/NETWORK.md``.

Runtime telemetry: ``--profile`` arms the sampling profiler and writes a
self-contained flamegraph HTML; ``--heartbeat SECONDS`` streams progress
snapshots to stderr during long sweeps; ``repro obs report`` aggregates
a recorded trace into a span report; ``repro obs regress`` diffs fresh
gauges against a baseline and can gate CI — see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable

from repro import datasets, faults, kernels, netsim, obs, parallel
from repro.errors import DatasetError, FaultInjectionError, NetworkSimError
from repro.faults import campaign as faults_campaign
from repro.obs import regress as obs_regress
from repro.obs import report as obs_report
from repro.obs import stream as obs_stream
from repro.obs.profile import SamplingProfiler
from repro.experiments import (
    ablations,
    coverage_map,
    goodput,
    sensitivity,
    fig10_beam_pattern,
    fig11_oaqfm,
    fig12_localization,
    fig13_orientation,
    fig14_downlink,
    fig15_uplink,
    power_table,
    table1_comparison,
)

__all__ = [
    "main", "EXPERIMENTS",
    "build_parser",
]

#: name -> (description, runner taking optional trial count and worker count).
#: Experiments whose hot loop is a homogeneous sweep accept ``workers``
#: (see docs/PERFORMANCE.md); the rest take and ignore it, so the CLI
#: can pass ``--workers`` uniformly.
EXPERIMENTS: dict[str, tuple[str, Callable[..., str]]] = {
    "fig10": (
        "Dual-port FSA beam pattern",
        lambda trials=None, workers=None: fig10_beam_pattern.main(),
    ),
    "fig11": (
        "OAQFM microbenchmark",
        lambda trials=None, workers=None: fig11_oaqfm.main(),
    ),
    "fig12": (
        "Localization accuracy (ranging + AoA)",
        lambda trials=None, workers=None: fig12_localization.main(
            n_trials=trials or 20, max_workers=workers
        ),
    ),
    "fig13": (
        "Orientation sensing (node + AP)",
        lambda trials=None, workers=None: fig13_orientation.main(
            n_trials=trials or 25, max_workers=workers
        ),
    ),
    "fig14": (
        "Downlink SINR vs distance",
        lambda trials=None, workers=None: fig14_downlink.main(
            n_trials=trials or 10, max_workers=workers
        ),
    ),
    "fig15": (
        "Uplink SNR vs distance (10/40 Mbps)",
        lambda trials=None, workers=None: fig15_uplink.main(
            n_trials=trials or 10, max_workers=workers
        ),
    ),
    "table1": (
        "Capability comparison",
        lambda trials=None, workers=None: table1_comparison.main(),
    ),
    "power": (
        "Node power consumption (§9.6)",
        lambda trials=None, workers=None: power_table.main(),
    ),
    "ablations": (
        "Design-choice ablations",
        lambda trials=None, workers=None: ablations.main(),
    ),
    "coverage": (
        "2-D room coverage map (beyond the paper)",
        lambda trials=None, workers=None: coverage_map.main(
            n_trials=trials or 3, max_workers=workers
        ),
    ),
    "goodput": (
        "Application goodput: preamble tax + ARQ at range",
        lambda trials=None, workers=None: goodput.main(),
    ),
    "sensitivity": (
        "Calibration-knob sensitivity audit",
        lambda trials=None, workers=None: sensitivity.main(),
    ),
}


def _add_execution_args(parser: argparse.ArgumentParser) -> None:
    """Worker/kernel/observability flags shared by every executing command."""
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run sweeps on N worker processes (0 = all cores; results "
        "are bitwise identical to serial; default: $REPRO_MAX_WORKERS or 1)",
    )
    parser.add_argument(
        "--kernels",
        choices=kernels.KERNEL_MODES,
        default=None,
        help="array-kernel implementation: 'batched' (default) or the "
        "retained 'reference' loops; experiment outputs are identical "
        "(default: $REPRO_KERNELS or 'batched')",
    )
    parser.add_argument(
        "--transport",
        choices=parallel.TRANSPORT_MODES,
        default=None,
        help="worker payload transport: 'shm' (default) moves large "
        "arrays through shared memory, 'pickle' ships everything over "
        "the pipe; results are bitwise identical "
        f"(default: ${parallel.TRANSPORT_ENV} or 'shm')",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL span/event trace of this run to PATH",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a metrics.json snapshot of this run to PATH",
    )
    parser.add_argument(
        "--obs-summary",
        action="store_true",
        help="print a metrics/span roll-up after the experiment output",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="arm the sampling profiler for this run (rate: "
        "$REPRO_PROFILE_HZ or 97 Hz; see docs/PERFORMANCE.md)",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default="flamegraph.html",
        help="flamegraph HTML written when --profile is set "
        "(default: flamegraph.html)",
    )
    parser.add_argument(
        "--profile-collapsed",
        metavar="PATH",
        default=None,
        help="also write the collapsed-stack dump to PATH (--profile only)",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        metavar="SECONDS",
        default=None,
        help="emit progress heartbeats to stderr at most every SECONDS "
        "(0 disables; default: $REPRO_HEARTBEAT_S or off)",
    )
    parser.add_argument(
        "--heartbeat-out",
        metavar="PATH",
        default=None,
        help="also append heartbeat JSONL records to PATH",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MilBack (SIGCOMM 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproducible experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment name from 'list', or 'all'")
    run.add_argument(
        "--trials",
        type=int,
        default=None,
        help="override the per-point trial count (where applicable)",
    )
    run.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="run under an active fault plan: comma-separated "
        "kind[:rate[:intensity]] entries, e.g. 'link_drop:0.2,"
        "adc_saturation:0.5:0.8' (see docs/ROBUSTNESS.md; 'repro faults' "
        "lists the kinds). One process-wide plan: unlike 'repro faults' "
        "campaigns, results are not bitwise serial-vs-parallel",
    )
    run.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the fault plan's RNG stream (default 0)",
    )
    _add_execution_args(run)
    fl = sub.add_parser(
        "faults", help="run a resilience campaign (fault-rate sweep)"
    )
    fl.add_argument(
        "--kinds",
        default="link_drop",
        help="comma-separated fault kinds to arm "
        f"(known: {', '.join(sorted(faults.FAULT_KINDS))})",
    )
    fl.add_argument(
        "--rates",
        default="0.0,0.1,0.2,0.3",
        help="comma-separated fault rates to sweep",
    )
    fl.add_argument(
        "--intensity",
        type=float,
        default=1.0,
        help="fault intensity in [0, 1] applied to every kind (default 1)",
    )
    fl.add_argument(
        "--trials",
        type=int,
        default=5,
        help="trials per swept rate (default 5)",
    )
    fl.add_argument(
        "--distance",
        type=float,
        default=3.0,
        help="AP-node distance in meters (default 3)",
    )
    fl.add_argument(
        "--seed",
        type=int,
        default=0,
        help="campaign seed; replays are bit-for-bit at any worker count",
    )
    fl.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when the ARQ resilience invariant is violated",
    )
    _add_execution_args(fl)
    ds = sub.add_parser(
        "dataset", help="generate or verify a labeled ML corpus (docs/DATASETS.md)"
    )
    ds_sub = ds.add_subparsers(dest="dataset_command", required=True)
    gen = ds_sub.add_parser(
        "generate", help="sweep the scenario grid into sharded NPZ + manifest"
    )
    gen.add_argument(
        "--out", metavar="DIR", required=True, help="corpus output directory"
    )
    gen.add_argument(
        "--scenes",
        default="clear,furnished,blocked",
        help="comma-separated scene kinds "
        f"(known: {', '.join(datasets.SCENE_KINDS)})",
    )
    gen.add_argument(
        "--distances", default="2.0,4.0,6.0", help="comma-separated distances [m]"
    )
    gen.add_argument(
        "--azimuths", default="0.0", help="comma-separated node azimuths [deg]"
    )
    gen.add_argument(
        "--orientations",
        default="0.0",
        help="comma-separated node orientations [deg]",
    )
    gen.add_argument(
        "--fault-rates", default="0.0", help="comma-separated fault rates in [0, 1]"
    )
    gen.add_argument(
        "--fault-kinds",
        default="chirp_drop",
        help="comma-separated fault kinds armed at non-zero rates "
        f"(known: {', '.join(sorted(faults.FAULT_KINDS))})",
    )
    gen.add_argument(
        "--velocities", default="0.0", help="comma-separated radial velocities [m/s]"
    )
    gen.add_argument(
        "--trials", type=int, default=1, help="trials per grid cell (default 1)"
    )
    gen.add_argument(
        "--seed",
        type=int,
        default=0,
        help="master corpus seed; rows are pure functions of (seed, index)",
    )
    gen.add_argument(
        "--bins",
        type=int,
        default=96,
        help="beat-spectrum feature width per row (default 96)",
    )
    gen.add_argument(
        "--rows-per-shard",
        type=int,
        default=4096,
        help="rows per NPZ shard (default 4096)",
    )
    gen.add_argument(
        "--block-rows",
        type=int,
        default=64,
        help="rows per worker block / memory granule (default 64)",
    )
    gen.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted corpus from its manifest "
        "(byte-identical to an uninterrupted run)",
    )
    _add_execution_args(gen)
    verify = ds_sub.add_parser(
        "verify", help="re-check an existing corpus's checksums and schema"
    )
    verify.add_argument(
        "--out", metavar="DIR", required=True, help="corpus directory to verify"
    )
    ns = sub.add_parser(
        "netsim",
        help="fleet-scale discrete-event network simulation (docs/NETWORK.md)",
    )
    ns_sub = ns.add_subparsers(dest="netsim_command", required=True)
    ns_sub.add_parser("list", help="list the named scenario registry")
    ns_run = ns_sub.add_parser("run", help="run one named scenario")
    ns_run.add_argument(
        "scenario", help="scenario name from 'netsim list'"
    )
    ns_run.add_argument(
        "--seed",
        type=int,
        default=0,
        help="run seed; a scenario is a pure function of (name, seed)",
    )
    ns_run.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the result as canonical (byte-stable) JSON",
    )
    _add_execution_args(ns_run)
    ns_matrix = ns_sub.add_parser(
        "matrix", help="run a scenario comparison matrix across workers"
    )
    ns_matrix.add_argument(
        "--scenarios",
        default="all",
        help="comma-separated scenario names, or 'all' (default)",
    )
    ns_matrix.add_argument(
        "--seed",
        type=int,
        default=0,
        help="run seed shared by every scenario (folded per name)",
    )
    ns_matrix.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the matrix as canonical (byte-stable) JSON",
    )
    _add_execution_args(ns_matrix)
    ob = sub.add_parser("obs", help="inspect and gate observability artifacts")
    obs_sub = ob.add_subparsers(dest="obs_command", required=True)
    report = obs_sub.add_parser(
        "report", help="aggregate a JSONL trace into a span report"
    )
    report.add_argument(
        "--trace", metavar="PATH", required=True, help="JSONL trace to aggregate"
    )
    report.add_argument(
        "--format",
        choices=("text", "json", "html"),
        default="text",
        help="output format (default text)",
    )
    report.add_argument(
        "--top",
        type=int,
        default=20,
        help="rows in the aggregate table (default 20)",
    )
    report.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the report to PATH instead of stdout",
    )
    regress = obs_sub.add_parser(
        "regress", help="diff fresh gauges against a recorded baseline"
    )
    regress.add_argument(
        "--baseline",
        metavar="PATH",
        required=True,
        help="baseline document (BENCH_obs.json or metrics.json)",
    )
    regress.add_argument(
        "--current",
        metavar="PATH",
        required=True,
        help="fresh document to compare against the baseline",
    )
    regress.add_argument(
        "--tolerance",
        metavar="NAME=FRACTION",
        action="append",
        default=None,
        help="per-gauge relative tolerance override (repeatable)",
    )
    regress.add_argument(
        "--default-tolerance",
        type=float,
        default=obs_regress.DEFAULT_TOLERANCE,
        help=f"relative tolerance band (default {obs_regress.DEFAULT_TOLERANCE})",
    )
    regress.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when any gauge regresses beyond its tolerance",
    )
    regress.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default text)",
    )
    regress.add_argument(
        "--verbose",
        action="store_true",
        help="show ok rows in the verdict table too",
    )
    return parser


def _run_experiments(args: argparse.Namespace) -> int:
    """Execute the selected experiment(s); returns an exit code."""
    if args.experiment == "all":
        for name, (_, runner) in EXPERIMENTS.items():
            print(f"\n### {name} " + "#" * max(60 - len(name), 0))  # milback: disable=ML007 — CLI output
            print(runner(trials=args.trials, workers=args.workers))  # milback: disable=ML007 — CLI output
        return 0
    _, runner = EXPERIMENTS[args.experiment]
    print(runner(trials=args.trials, workers=args.workers))  # milback: disable=ML007 — CLI output
    return 0


def _run_faults_campaign(args: argparse.Namespace) -> int:
    """Execute the ``faults`` subcommand inside the obs window."""
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    rates = tuple(float(r) for r in args.rates.split(",") if r.strip())
    result = faults_campaign.main(
        kinds=kinds,
        rates=rates,
        intensity=args.intensity,
        n_trials=args.trials,
        distance_m=args.distance,
        seed=args.seed,
        max_workers=args.workers,
    )
    print(result.rows())  # milback: disable=ML007 — CLI output
    if args.check:
        try:
            faults_campaign.check_resilience(result)
        except FaultInjectionError as exc:
            print(exc, file=sys.stderr)  # milback: disable=ML007 — CLI output
            return 1
        print("resilience invariant: OK")  # milback: disable=ML007 — CLI output
    return 0


def _split_floats(raw: str) -> tuple[float, ...]:
    return tuple(float(v) for v in raw.split(",") if v.strip())


def _split_names(raw: str) -> tuple[str, ...]:
    return tuple(v.strip() for v in raw.split(",") if v.strip())


def _run_dataset_generate(args: argparse.Namespace) -> int:
    """Execute ``repro dataset generate`` inside the obs window."""
    config = datasets.DatasetConfig(
        scenes=_split_names(args.scenes),
        distances_m=_split_floats(args.distances),
        azimuths_deg=_split_floats(args.azimuths),
        orientations_deg=_split_floats(args.orientations),
        fault_rates=_split_floats(args.fault_rates),
        fault_kinds=_split_names(args.fault_kinds),
        velocities_mps=_split_floats(args.velocities),
        n_trials=args.trials,
        seed=args.seed,
        n_spectrum_bins=args.bins,
    )
    manifest = datasets.generate_dataset(
        config,
        args.out,
        max_workers=args.workers,
        rows_per_shard=args.rows_per_shard,
        block_rows=args.block_rows,
        resume=args.resume,
    )
    status = "complete" if manifest["complete"] else "partial"
    print(  # milback: disable=ML007 — CLI output
        f"corpus {status}: {manifest['rows_written']}/{manifest['n_rows']} rows "
        f"in {len(manifest['shards'])} shards at {args.out}"
    )
    return 0


def _run_dataset_verify(args: argparse.Namespace) -> int:
    """Execute ``repro dataset verify``."""
    try:
        manifest = datasets.validate_corpus(args.out)
    except DatasetError as exc:
        print(f"corpus INVALID: {exc}", file=sys.stderr)  # milback: disable=ML007 — CLI output
        return 1
    status = "complete" if manifest["complete"] else "partial"
    print(  # milback: disable=ML007 — CLI output
        f"corpus OK ({status}): {manifest['rows_written']}/{manifest['n_rows']} "
        f"rows in {len(manifest['shards'])} shards, schema v{manifest['schema_version']}"
    )
    return 0


def _run_netsim(args: argparse.Namespace) -> int:
    """Execute ``repro netsim run|matrix`` inside the obs window."""
    seed = args.seed
    try:
        if args.netsim_command == "run":
            results = [netsim.run_scenario(args.scenario, seed=seed)]
        else:
            if args.scenarios == "all":
                names = sorted(netsim.SCENARIOS)
            else:
                names = list(_split_names(args.scenarios))
            results = netsim.run_matrix(names, seed=seed, max_workers=args.workers)
    except NetworkSimError as exc:
        print(f"netsim: {exc}", file=sys.stderr)  # milback: disable=ML007 — CLI output
        return 2
    print(netsim.render_table(results))  # milback: disable=ML007 — CLI output
    if args.json is not None:
        document = netsim.matrix_document(results, seed)
        Path(args.json).write_text(netsim.dump_json(document), encoding="utf-8")
    return 0


def _run_obs_report(args: argparse.Namespace) -> int:
    """Execute ``repro obs report``."""
    spans, problems = obs_report.load_trace_spans(args.trace)
    if args.format == "json":
        output = json.dumps(
            obs_report.report_document(spans, problems), indent=2, sort_keys=True
        )
    elif args.format == "html":
        output = obs_report.render_report_html(spans, top=args.top, problems=problems)
    else:
        output = obs_report.render_report_text(spans, top=args.top, problems=problems)
    if args.out is not None:
        Path(args.out).write_text(output + "\n", encoding="utf-8")
    else:
        print(output)  # milback: disable=ML007 — CLI output
    return 0


def _run_obs_regress(args: argparse.Namespace) -> int:
    """Execute ``repro obs regress``; exit 1 only when gating and regressed."""
    comparisons = obs_regress.compare_documents(
        obs_regress.load_gauges(args.baseline),
        obs_regress.load_gauges(args.current),
        default_tolerance=args.default_tolerance,
        overrides=obs_regress.parse_tolerance_overrides(args.tolerance),
    )
    if args.format == "json":
        document = obs_regress.regress_document(comparisons)
        print(json.dumps(document, indent=2, sort_keys=True))  # milback: disable=ML007 — CLI output
    else:
        print(obs_regress.render_verdict_table(comparisons, verbose=args.verbose))  # milback: disable=ML007 — CLI output
    if args.fail_on_regression and obs_regress.has_regressions(comparisons):
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")  # milback: disable=ML007 — CLI output
        return 0
    if args.command == "obs":
        obs.reset()
        if args.obs_command == "report":
            return _run_obs_report(args)
        return _run_obs_regress(args)
    if args.command == "dataset" and args.dataset_command == "verify":
        obs.reset()
        return _run_dataset_verify(args)
    if args.command == "netsim" and args.netsim_command == "list":
        width = max(len(name) for name in netsim.SCENARIOS)
        for name in sorted(netsim.SCENARIOS):
            spec = netsim.SCENARIOS[name]
            print(  # milback: disable=ML007 — CLI output
                f"{name.ljust(width)}  v{spec.version}  {spec.description}"
            )
        return 0
    if args.command == "run" and args.experiment != "all" and args.experiment not in EXPERIMENTS:
        print(  # milback: disable=ML007 — CLI output
            f"unknown experiment {args.experiment!r}; "
            f"choose from {', '.join(EXPERIMENTS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    if args.kernels is not None:
        kernels.set_kernel_mode(args.kernels)
    if args.transport is not None:
        parallel.set_transport_mode(args.transport)
    # One invocation = one observation window: artifacts must describe
    # exactly this run, so clear anything import-time code recorded.
    obs.reset()
    obs_stream.configure(interval_s=args.heartbeat, jsonl_path=args.heartbeat_out)
    profiler = SamplingProfiler() if args.profile else None
    if profiler is not None:
        profiler.start()
    try:
        if args.command == "faults":
            with obs.span("cli.faults", kinds=args.kinds, rates=args.rates):
                obs.counter("cli.runs").inc()
                status = _run_faults_campaign(args)
        elif args.command == "dataset":
            with obs.span("cli.dataset", out=str(args.out)):
                obs.counter("cli.runs").inc()
                status = _run_dataset_generate(args)
        elif args.command == "netsim":
            target = (
                args.scenario if args.netsim_command == "run" else args.scenarios
            )
            with obs.span("cli.netsim", command=args.netsim_command, target=target):
                obs.counter("cli.runs").inc()
                status = _run_netsim(args)
        elif args.faults is not None:
            specs = faults.parse_fault_specs(args.faults)
            plan = faults.FaultPlan(specs, rng=args.fault_seed)
            with obs.span("cli.run", experiment=args.experiment, faults=args.faults):
                obs.counter("cli.runs").inc()
                with faults.activate(plan):
                    status = _run_experiments(args)
        else:
            with obs.span("cli.run", experiment=args.experiment):
                obs.counter("cli.runs").inc()
                status = _run_experiments(args)
    finally:
        # Artifacts are written even when an experiment raises — a
        # partial trace of a crashed sweep is exactly what you debug with.
        # The profiler stops first so profile.samples/profile.hz land in
        # the metrics snapshot written below.
        if profiler is not None:
            profiler.stop()
            profiler.write_flamegraph_html(
                args.profile_out, title=f"repro {args.command}"
            )
            if args.profile_collapsed is not None:
                profiler.write_collapsed(args.profile_collapsed)
        obs_stream.configure(interval_s=0.0)
        if args.trace is not None:
            obs.write_trace_jsonl(args.trace, obs.get_tracer())
        if args.metrics_out is not None:
            obs.write_metrics_json(args.metrics_out, obs.get_registry())
    if args.obs_summary:
        print()  # milback: disable=ML007 — CLI output
        print(obs.render_text_summary(obs.get_registry(), obs.get_tracer()))  # milback: disable=ML007 — CLI output
    return status
