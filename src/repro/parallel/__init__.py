"""repro.parallel — deterministic process-pool execution for sweeps.

The paper's figures all reduce to "run an independent trial per
``(parameter, trial)`` pair"; this package executes those pairs on a
pool of forked worker processes without changing a single bit of the
output. Three contracts make that safe (see ``docs/PERFORMANCE.md``):

* **bitwise determinism** — the parent spawns the same per-task RNG
  streams a serial run would (``repro.utils.rng.spawn_rngs``) and ships
  each stream to its task, so results are identical at any worker count;
* **observability fidelity** — workers collect ``repro.obs`` metrics and
  spans into their own process-local registry and return them as a delta
  per chunk; the parent merges the deltas, so counter totals (e.g.
  ``sweep.trials``, ``engine.*.trials``) match a serial run exactly;
* **graceful degradation** — when ``max_workers`` resolves to 1, the
  platform cannot ``fork``, or the pool dies, execution falls back to
  the serial in-process path and records why
  (``parallel.fallbacks{reason=...}``).

This is the only module tree allowed to import process-pool primitives
(`concurrent.futures` / `multiprocessing`) — lint rule ML008 enforces
the boundary so pool lifecycle management never leaks into physics code.
"""

from __future__ import annotations

from repro.parallel.executor import (
    DEFAULT_WORKERS_ENV,
    ParallelResult,
    parallel_map,
    resolve_max_workers,
)
from repro.parallel.pool import PersistentPool, active_pool
from repro.parallel.shm import (
    TRANSPORT_ENV,
    TRANSPORT_MODES,
    set_transport_mode,
    transport_mode,
)

__all__ = [
    "DEFAULT_WORKERS_ENV",
    "TRANSPORT_ENV",
    "TRANSPORT_MODES",
    "ParallelResult",
    "PersistentPool",
    "active_pool",
    "parallel_map",
    "resolve_max_workers",
    "set_transport_mode",
    "transport_mode",
]
