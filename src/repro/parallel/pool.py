"""Persistent warm worker pool for sustained multi-call workloads.

:func:`~repro.parallel.executor.parallel_map` forks a fresh process
pool per call. That is the right trade for one sweep — closures cross
the fork boundary for free — but sustained corpus generation
(:mod:`repro.datasets`) issues *many* map calls, and each cold pool
pays fork + executor spin-up again, then throws away every
scene-invariant cache entry (:mod:`repro.sim.cache`) its workers just
warmed.

:class:`PersistentPool` keeps one forked pool alive across calls:

* **Warm state.** Workers are forked once (inheriting the parent's
  caches copy-on-write) and then *keep* everything they warm up —
  ``repro.sim.cache`` entries, imported modules, the shm resource
  tracker — across chunks and across map calls. The active kernel mode
  and transport are shipped with every chunk, so a parent-side
  ``--kernels``/``--transport`` change reaches workers forked earlier.
* **Picklable functions only.** A persistent pool cannot rely on
  fork-time closure inheritance (it forked before your closure
  existed), so the chunk function crosses the pipe by pickle. Use
  module-level functions or :func:`functools.partial` over picklable
  arguments; :func:`parallel_map` falls back to its cold-fork path for
  closures automatically.
* **Streaming.** :meth:`imap_chunks` yields ordered per-chunk results
  as they arrive with a bounded submission window, so a consumer (the
  dataset shard writer) runs with bounded memory no matter how large
  the item list is.
* **Lifecycle.** ``shutdown()`` is idempotent and also runs from a
  context-manager exit and an ``atexit`` hook, so no run ends with
  zombie workers. Shared-memory arenas are swept on every exit path —
  success, trial exception, ``KeyboardInterrupt``, broken pool — and a
  broken pool degrades the *current* call to the in-process serial
  loop (bit-identical: the parent's RNG copies never advanced) while
  the next call forks a fresh pool.

Entering the pool as a context manager also installs it process-wide:
every :func:`parallel_map` call issued underneath (sweeps, campaigns,
dataset generation) routes through the warm pool when its function is
picklable. See ``docs/PERFORMANCE.md`` for the measured warm-vs-cold
speedup (``bench.parallel.warm_pool_speedup``).
"""

from __future__ import annotations

import atexit
import multiprocessing
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterator, Sequence

from repro import kernels, obs
from repro.errors import ConfigurationError
from repro.obs import stream
from repro.parallel import executor as _executor
from repro.parallel import shm
from repro.parallel.executor import ParallelResult, resolve_max_workers

__all__ = ["PersistentPool", "active_pool", "is_picklable"]

#: In-flight chunk futures per map call: enough to keep every worker
#: busy through result consumption, bounded so a streaming consumer
#: never buffers an unbounded backlog of finished chunks.
_WINDOW_PER_WORKER = 3


class _PoolBroken(Exception):
    """Internal: the executor died; the caller should degrade to serial."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def is_picklable(fn: Callable[[Any], Any]) -> bool:
    """Can ``fn`` cross the pipe to an already-forked worker?"""
    try:
        pickle.dumps(fn)
        return True
    except Exception:  # noqa: BLE001  # milback: disable=ML004 — arbitrary __reduce__ failures all mean "no"
        return False


def _run_pool_chunk(
    fn: Callable[[Any], Any],
    payloads: Any,
    transport: str,
    kernel_mode: str,
) -> tuple[Any, dict, list[dict], list[dict], float]:
    """Worker side of one persistent-pool chunk.

    Mirrors :func:`repro.parallel.executor._run_chunk`, except the trial
    function arrives by pickle (the worker forked before it existed)
    and the parent's current kernel mode rides along so warm workers
    track overrides set after the fork.
    """
    _executor._IN_WORKER = True
    kernels.set_kernel_mode(kernel_mode)
    if transport == "shm":
        shm.purge_attached()
        payloads = shm.unpack_views(payloads)
    obs.reset()
    obs.get_tracer().detach_open_spans()
    t0 = time.perf_counter()
    result: Any = [fn(payload) for payload in payloads]
    if transport == "shm":
        result, result_arena = shm.pack(result)
        obs.counter("parallel.bytes_shipped", path="shm").inc(result.nbytes)
        if result_arena is not None:
            # Close only the mapping; the parent unlinks the segment
            # after copying the results out (shm.unpack_copies).
            result_arena.close()
    state = obs.get_registry().dump_state()
    spans = [s.to_dict() for s in obs.get_tracer().finished_spans()]
    events = [e.to_dict() for e in obs.get_tracer().events()]
    return result, state, spans, events, t0


def _noop(_: Any) -> None:
    """Warm-up task: forks the workers without doing any work."""
    return None


class PersistentPool:
    """A reusable forked worker pool with explicit lifecycle.

    Construct once, issue any number of :meth:`map` /
    :meth:`imap_chunks` calls, then :meth:`shutdown` (or use ``with``).
    Entering as a context manager additionally installs the pool as the
    process-wide routing target for :func:`parallel_map`.
    """

    def __init__(self, max_workers: int | None = None, chunk_size: int | None = None) -> None:
        self.max_workers = resolve_max_workers(max_workers)
        self.chunk_size = chunk_size
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False
        self._maps_served = 0
        self._previous_active: PersistentPool | None = None
        atexit.register(self.shutdown)

    # --- lifecycle -------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def worker_pids(self) -> list[int]:
        """PIDs of the live forked workers (empty before the first map)."""
        if self._pool is None:
            return []
        return list(self._pool._processes)  # noqa: SLF001 — stdlib keeps no public view

    def warm(self) -> "PersistentPool":
        """Fork the workers now so later maps pay no spin-up cost."""
        if self.max_workers > 1:
            self.map(_noop, list(range(self.max_workers)), chunk_size=1)
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers and release every pool resource (idempotent)."""
        pool, self._pool = self._pool, None
        already_closed, self._closed = self._closed, True
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)
            obs.counter("parallel.pool.shutdowns").inc()
        if not already_closed:
            atexit.unregister(self.shutdown)

    def __enter__(self) -> "PersistentPool":
        global _ACTIVE
        self._previous_active = _ACTIVE
        _ACTIVE = self
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        if _ACTIVE is self:
            _ACTIVE = self._previous_active
        self._previous_active = None
        self.shutdown()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise ConfigurationError("PersistentPool is shut down")
        if self._pool is None:
            if "fork" not in multiprocessing.get_all_start_methods():
                raise _PoolBroken("no-fork")
            # One resource tracker, spawned pre-fork, for every arena
            # either side creates over the pool's whole lifetime.
            shm.ensure_tracker()
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=multiprocessing.get_context("fork"),
                )
            except (OSError, ValueError) as exc:
                raise _PoolBroken(type(exc).__name__) from exc
            obs.counter("parallel.pool.spawns").inc()
        else:
            obs.counter("parallel.pool.reuses").inc()
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a broken executor; the next map call forks a fresh one."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        obs.counter("parallel.pool.breaks").inc()

    # --- execution -------------------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        chunk_size: int | None = None,
    ) -> ParallelResult:
        """Run ``fn`` over ``items`` on the warm pool, preserving order.

        Same contract as :func:`parallel_map` — ordered values, worker
        obs deltas merged, serial fallback on infrastructure failure —
        but reusing this pool's live workers. ``fn`` must be picklable.
        """
        items = list(items)
        workers = self.max_workers
        if workers <= 1 or len(items) <= 1:
            return ParallelResult(
                values=_executor._serial_loop(fn, items),
                workers=1,
                n_chunks=0,
                fallback_reason="serial",
            )
        if not is_picklable(fn):
            return _executor._serial_fallback(fn, items, workers, reason="unpicklable")
        chunks = _executor._chunk_indices(len(items), workers, chunk_size or self.chunk_size)
        values: list[Any] = []
        try:
            for chunk_values in self._run_chunks(fn, items, chunks):
                values.extend(chunk_values)
        except _PoolBroken as exc:
            # Chunks already consumed stay; only the remainder reruns
            # in-process. Bit-identical either way — the parent's RNG
            # copies inside `items` were never advanced.
            rest = _executor._serial_fallback(
                fn, items[len(values) :], workers, reason=exc.reason
            )
            return ParallelResult(
                values=values + rest.values,
                workers=1,
                n_chunks=0,
                fallback_reason=exc.reason,
            )
        return ParallelResult(
            values=values, workers=min(workers, len(chunks)), n_chunks=len(chunks)
        )

    def imap_chunks(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        chunk_size: int | None = None,
    ) -> Iterator[list[Any]]:
        """Yield ordered per-chunk value lists as chunks complete.

        The streaming interface behind :mod:`repro.datasets`: the
        consumer sees chunk results in item order while later chunks
        are still in flight, with at most ``3 × max_workers`` chunks
        in flight at once. On a broken pool the not-yet-yielded chunks
        rerun in-process — results stay bit-identical because their
        RNG streams (inside ``items``) were never advanced.
        """
        items = list(items)
        workers = self.max_workers
        serial_from = 0
        if workers > 1 and len(items) > 1 and is_picklable(fn):
            chunks = _executor._chunk_indices(len(items), workers, chunk_size or self.chunk_size)
            done_chunks = 0
            try:
                for chunk_values in self._run_chunks(fn, items, chunks):
                    done_chunks += 1
                    yield chunk_values
                return
            except _PoolBroken as exc:
                obs.counter("parallel.fallbacks", reason=exc.reason).inc()
                serial_from = sum(len(chunk) for chunk in chunks[:done_chunks])
        elif workers > 1 and len(items) > 1:
            obs.counter("parallel.fallbacks", reason="unpicklable").inc()
        for i in range(serial_from, len(items)):
            yield [fn(items[i])]
            stream.tick(done=i + 1, total=len(items), force=i + 1 == len(items))

    def _run_chunks(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        chunks: list[range],
    ) -> Iterator[list[Any]]:
        """Submit chunks through a bounded window; yield results in order.

        Raises :class:`_PoolBroken` (after cleaning up) when the pool
        infrastructure dies; trial exceptions propagate unchanged.
        """
        pool = self._ensure_pool()
        self._maps_served += 1
        transport = shm.transport_mode()
        kernel_mode = kernels.kernel_mode()
        workers = min(self.max_workers, len(chunks))
        obs.gauge("parallel.workers").set(workers)
        obs.counter("parallel.maps").inc()
        obs.counter("parallel.tasks").inc(len(items))
        obs.counter("parallel.chunks").inc(len(chunks))
        obs.counter("parallel.pool.chunks").inc(len(chunks))
        window = _WINDOW_PER_WORKER * self.max_workers
        item_arenas: dict[int, Any] = {}
        pending: dict[int, tuple[Any, float]] = {}
        emitter = stream.get_emitter()
        next_submit = 0
        done_items = 0

        def _submit_next() -> None:
            nonlocal next_submit
            chunk_index = next_submit
            payload: Any = [items[i] for i in chunks[chunk_index]]
            if transport == "shm":
                payload, arena = shm.pack(payload)
                if arena is not None:
                    item_arenas[chunk_index] = arena
                obs.counter("parallel.bytes_shipped", path="shm").inc(payload.nbytes)
            obs.counter("parallel.bytes_shipped", path="pickle").inc(
                len(pickle.dumps(payload))
            )
            future = pool.submit(_run_pool_chunk, fn, payload, transport, kernel_mode)
            pending[chunk_index] = (future, time.perf_counter())
            next_submit += 1

        def _sweep() -> None:
            for future, _ in pending.values():
                future.cancel()
            pending.clear()
            while item_arenas:
                _, leftover = item_arenas.popitem()
                shm.destroy(leftover)

        try:
            with obs.span("parallel.pool.map", tasks=len(items), workers=workers):
                for chunk_index in range(len(chunks)):
                    while next_submit < len(chunks) and len(pending) < window:
                        _submit_next()
                    future, dispatched = pending[chunk_index]
                    while True:
                        try:
                            chunk_values, state, spans, events, t0 = future.result(
                                timeout=emitter.interval_s if emitter else None
                            )
                            break
                        except FutureTimeoutError:
                            stream.tick(done=done_items, total=len(items))
                    del pending[chunk_index]
                    if transport == "shm":
                        chunk_values = shm.unpack_copies(chunk_values)
                        arena = item_arenas.pop(chunk_index, None)
                        if arena is not None:
                            shm.destroy(arena)
                    offset = dispatched - t0
                    obs.get_registry().merge_state(state)
                    obs.get_tracer().absorb_spans(spans, offset_s=offset)
                    obs.get_tracer().absorb_events(events, offset_s=offset)
                    done_items += len(chunk_values)
                    stream.tick(
                        done=done_items,
                        total=len(items),
                        force=done_items == len(items),
                    )
                    yield chunk_values
        except (BrokenProcessPool, OSError) as exc:
            # Workers died underneath us; this pool is unusable, but the
            # PersistentPool object survives — the next call re-forks.
            self._discard_pool()
            raise _PoolBroken(type(exc).__name__) from exc
        except (KeyboardInterrupt, SystemExit):
            # The user is bailing out: reap the workers *now* so nothing
            # outlives the interrupt, then let it propagate.
            self.shutdown(wait=True)
            raise
        finally:
            _sweep()


# --- process-wide routing ----------------------------------------------------------

_ACTIVE: PersistentPool | None = None


def active_pool() -> PersistentPool | None:
    """The pool installed by ``with PersistentPool(...)``, if any."""
    if _ACTIVE is not None and _ACTIVE.closed:
        return None
    return _ACTIVE
