"""The process-pool sweep executor.

Execution model
---------------

``parallel_map(fn, items)`` splits ``items`` into contiguous chunks and
runs each chunk in a forked worker process. Workers are forked, not
spawned, for one load-bearing reason: sweep trial functions are closures
over experiment parameters (scene geometry, bit rates, …) and closures
cannot cross a pickle boundary — but a forked child inherits them by
copy-on-write through the module global :data:`_WORKER_FN`. Item
payloads (parameters and ``numpy.random.Generator`` streams) *are*
pickled, which preserves RNG state exactly.

Each worker chunk opens a fresh observation window (`obs.reset()` plus
:meth:`~repro.obs.tracing.Tracer.detach_open_spans`), runs its tasks,
and returns ``(values, registry state, finished spans, events, t0)``.
The parent merges every chunk's registry delta and absorbs its spans —
rebased onto the parent timeline at the chunk's dispatch instant — so
one ``metrics.json``/trace describes the whole run no matter where the
work happened.

Failure model: exceptions raised by ``fn`` propagate to the caller
exactly as in a serial loop. Pool *infrastructure* failures (fork
unavailable, pool refuses to start, workers die) instead trigger a
serial in-process fallback — deterministic because the parent's RNG
copies were never advanced — and bump ``parallel.fallbacks``.

Transport: large ndarray payloads and results ride shared-memory
arenas instead of the pickle pipe when :mod:`repro.parallel.shm` is in
its default ``shm`` mode — the parent packs each chunk's arrays into
one arena, the worker runs the trial function on views, and the parent
reassembles owned copies and unlinks. RNG streams, scalars, and the
obs delta stay pickled either way, so values are bit-identical across
transports; ``parallel.bytes_shipped{path=pickle|shm}`` counts what
moved over each path.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro import obs
from repro.errors import ConfigurationError
from repro.obs import stream
from repro.parallel import shm

__all__ = [
    "DEFAULT_WORKERS_ENV",
    "ParallelResult",
    "parallel_map",
    "resolve_max_workers",
]

#: Environment variable consulted when ``max_workers`` is not given.
DEFAULT_WORKERS_ENV = "REPRO_MAX_WORKERS"

#: The chunk fan-out per worker: enough chunks that an uneven trial mix
#: load-balances, few enough that per-chunk overhead stays negligible.
_CHUNKS_PER_WORKER = 4

# Fork-inherited worker state. The parent sets _WORKER_FN immediately
# before creating the pool; forked children see it by copy-on-write.
_WORKER_FN: Callable[[Any], Any] | None = None
_IN_WORKER = False


def resolve_max_workers(max_workers: int | None) -> int:
    """Turn the user-facing knob into an effective worker count.

    ``None`` defers to ``$REPRO_MAX_WORKERS`` (absent/empty → 1, the
    serial default); ``0`` or negative means "all cores". Inside a
    worker process the answer is always 1 — nested pools would
    oversubscribe and gain nothing.
    """
    if _IN_WORKER:
        return 1
    if max_workers is None:
        raw = os.environ.get(DEFAULT_WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            max_workers = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"${DEFAULT_WORKERS_ENV}={raw!r} is not an integer"
            ) from None
    if max_workers <= 0:
        return os.cpu_count() or 1
    return int(max_workers)


@dataclass(frozen=True)
class ParallelResult:
    """Outcome of one :func:`parallel_map` call."""

    values: list[Any]
    workers: int
    n_chunks: int
    #: None when the pool ran; otherwise why execution fell back to serial.
    fallback_reason: str | None = None

    @property
    def parallel(self) -> bool:
        return self.fallback_reason is None and self.workers > 1


def _chunk_indices(n_items: int, workers: int, chunk_size: int | None) -> list[range]:
    """Contiguous index ranges covering ``range(n_items)`` in order."""
    if chunk_size is None:
        chunk_size = max(1, -(-n_items // (workers * _CHUNKS_PER_WORKER)))
    if chunk_size < 1:
        raise ConfigurationError("chunk_size must be at least 1")
    return [range(lo, min(lo + chunk_size, n_items)) for lo in range(0, n_items, chunk_size)]


def _run_chunk(payloads: Any, transport: str) -> tuple[Any, dict, list[dict], list[dict], float]:
    """Worker side: run one chunk and package results + obs delta."""
    global _IN_WORKER
    _IN_WORKER = True
    fn = _WORKER_FN
    if fn is None:  # pragma: no cover - indicates a non-fork pool misuse
        raise ConfigurationError("worker has no inherited trial function")
    if transport == "shm":
        # Mappings left over from earlier chunks on this worker can be
        # closed now that their trial views are dead; the parent already
        # unlinked those segments when it consumed the chunk results.
        shm.purge_attached()
        payloads = shm.unpack_views(payloads)
    # Fresh observation window: drop everything inherited from the
    # parent at fork time so the returned delta covers exactly this chunk.
    obs.reset()
    obs.get_tracer().detach_open_spans()
    t0 = time.perf_counter()
    result: Any = [fn(payload) for payload in payloads]
    if transport == "shm":
        result, result_arena = shm.pack(result)
        obs.counter("parallel.bytes_shipped", path="shm").inc(result.nbytes)
        if result_arena is not None:
            # Only close the mapping — the segment must outlive this
            # worker so the parent can copy out of it; the parent
            # unlinks it in shm.unpack_copies().
            result_arena.close()
    state = obs.get_registry().dump_state()
    spans = [s.to_dict() for s in obs.get_tracer().finished_spans()]
    events = [e.to_dict() for e in obs.get_tracer().events()]
    return result, state, spans, events, t0


def _serial_loop(fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
    """In-process execution with live heartbeats (no-ops when disabled)."""
    values = []
    for i, item in enumerate(items):
        values.append(fn(item))
        stream.tick(done=i + 1, total=len(items), force=i + 1 == len(items))
    return values


def _serial_fallback(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: int,
    reason: str,
) -> ParallelResult:
    obs.counter("parallel.fallbacks", reason=reason).inc()
    return ParallelResult(
        values=_serial_loop(fn, items),
        workers=1,
        n_chunks=0,
        fallback_reason=reason,
    )


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    max_workers: int | None = None,
    chunk_size: int | None = None,
) -> ParallelResult:
    """Run ``fn`` over ``items`` on a process pool, preserving order.

    Results come back in item order regardless of which worker finished
    first, worker obs metrics/spans are merged into the parent, and any
    infrastructure failure degrades to an in-process serial loop. ``fn``
    may be a closure; ``items`` must be picklable (RNG generators are).
    """
    global _WORKER_FN
    items = list(items)
    workers = resolve_max_workers(max_workers)
    if workers <= 1 or len(items) <= 1:
        # Intentional serial execution, not a degradation — no fallback
        # counter, so parallel.fallbacks only ever flags real failures.
        return ParallelResult(
            values=_serial_loop(fn, items),
            workers=1,
            n_chunks=0,
            fallback_reason="serial",
        )
    if "fork" not in multiprocessing.get_all_start_methods():
        return _serial_fallback(fn, items, workers, reason="no-fork")

    # An installed PersistentPool serves every picklable workload with
    # already-warm workers; closures keep the cold fork path below,
    # which inherits them copy-on-write through _WORKER_FN.
    from repro.parallel import pool as _pool_mod  # deferred: avoids import cycle

    active = _pool_mod.active_pool()
    if active is not None and _pool_mod.is_picklable(fn):
        return active.map(fn, items, chunk_size=chunk_size)

    chunks = _chunk_indices(len(items), workers, chunk_size)
    workers = min(workers, len(chunks))
    obs.gauge("parallel.workers").set(workers)
    obs.counter("parallel.maps").inc()
    obs.counter("parallel.tasks").inc(len(items))
    obs.counter("parallel.chunks").inc(len(chunks))

    transport = shm.transport_mode()
    # Item arenas still owned by the parent, keyed by chunk index. Each
    # is destroyed as its chunk result arrives; the finally sweep below
    # reclaims the rest on any exit (trial exception, broken pool,
    # serial fallback), so /dev/shm never leaks a segment.
    item_arenas: dict[int, Any] = {}

    def _sweep_arenas() -> None:
        while item_arenas:
            _, leftover = item_arenas.popitem()
            shm.destroy(leftover)

    _WORKER_FN = fn
    try:
        with obs.span("parallel.map", tasks=len(items), workers=workers):
            if transport == "shm":
                # Spawn the resource tracker now so every forked worker
                # inherits it — one tracker for all arenas, parent- or
                # worker-created, means one unlink settles each segment.
                shm.ensure_tracker()
            try:
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=multiprocessing.get_context("fork"),
                )
            except (OSError, ValueError) as exc:
                return _serial_fallback(fn, items, workers, reason=type(exc).__name__)
            try:
                futures = []
                dispatch_s = []
                for chunk_index, chunk in enumerate(chunks):
                    payload: Any = [items[i] for i in chunk]
                    if transport == "shm":
                        payload, arena = shm.pack(payload)
                        if arena is not None:
                            item_arenas[chunk_index] = arena
                        obs.counter("parallel.bytes_shipped", path="shm").inc(
                            payload.nbytes
                        )
                    # What actually crosses the pipe for this chunk: the
                    # raw item list in pickle mode, the slotted remainder
                    # (RNG streams, scalars) in shm mode.
                    obs.counter("parallel.bytes_shipped", path="pickle").inc(
                        len(pickle.dumps(payload))
                    )
                    dispatch_s.append(time.perf_counter())
                    futures.append(pool.submit(_run_chunk, payload, transport))
                emitter = stream.get_emitter()
                values: list[Any] = []
                for chunk_index, (future, dispatched) in enumerate(
                    zip(futures, dispatch_s)
                ):
                    while True:
                        try:
                            # Bounded waits keep the heartbeat channel
                            # live while chunks are in flight; with
                            # heartbeats disabled this is a plain
                            # blocking result() and costs nothing.
                            chunk_values, state, spans, events, t0 = future.result(
                                timeout=emitter.interval_s if emitter else None
                            )
                            break
                        except FutureTimeoutError:
                            done_items = sum(
                                len(chunks[i])
                                for i, chunk_future in enumerate(futures)
                                if chunk_future.done()
                            )
                            stream.tick(done=done_items, total=len(items))
                    if transport == "shm":
                        chunk_values = shm.unpack_copies(chunk_values)
                        arena = item_arenas.pop(chunk_index, None)
                        if arena is not None:
                            shm.destroy(arena)
                    values.extend(chunk_values)
                    offset = dispatched - t0
                    obs.get_registry().merge_state(state)
                    obs.get_tracer().absorb_spans(spans, offset_s=offset)
                    obs.get_tracer().absorb_events(events, offset_s=offset)
                    # Merged chunk deltas become visible in the next
                    # heartbeat's counter-delta section; the last chunk
                    # always beats so a 100% line closes the stream.
                    stream.tick(
                        done=len(values),
                        total=len(items),
                        force=len(values) == len(items),
                    )
            except (BrokenProcessPool, OSError) as exc:
                # Workers died underneath us (OOM killer, container limits).
                # The parent's RNG copies were never advanced, so the serial
                # re-run is bit-identical to what the pool would have produced.
                pool.shutdown(wait=False, cancel_futures=True)
                _sweep_arenas()
                return _serial_fallback(fn, items, workers, reason=type(exc).__name__)
            pool.shutdown()
    finally:
        _WORKER_FN = None
        _sweep_arenas()
    return ParallelResult(values=values, workers=workers, n_chunks=len(chunks))
