"""Zero-copy shared-memory transport for process-pool payloads.

The executor pickles chunk payloads on submit and chunk results on
return. For scalar trial parameters and RNG streams that is cheap, but
ndarray payloads pay three copies per direction (serialize, pipe,
deserialize). This module moves every sufficiently large ndarray found
in a payload through one ``multiprocessing.shared_memory`` arena per
chunk instead: the parent writes each array into the arena once, the
forked worker maps the segment and hands the trial function *views*
(no deserialize copy), and worker results come back the same way with
the parent reassembling owned copies before unlinking. Everything else
— RNG streams, floats, the obs deltas — stays on the pickle path
exactly as before.

Arena lifecycle (the "guaranteed unlink" contract)
--------------------------------------------------

* **Item arenas** are created by the parent, one per chunk with
  qualifying arrays. The parent destroys each one as its chunk result
  arrives, and a ``finally`` sweep destroys whatever is left on any
  exit — success, worker crash, or serial fallback.
* **Result arenas** are created inside the worker; the worker closes
  its mapping immediately after packing (the segment persists until
  unlink) and destroys the arena itself if packing fails. The parent
  unlinks after reassembly in :func:`unpack_copies`.
* Both sides run under one resource tracker — the parent spawns it
  (:func:`ensure_tracker`) before the pool forks — so if a process dies
  between create and unlink, the tracker reclaims the segment at
  shutdown instead of leaking ``/dev/shm``.
* Worker-side item mappings cannot be closed while trial-function
  views are alive, so workers keep attached arenas in a process-local
  list and :func:`purge_attached` closes the dead ones at the start of
  each chunk (a ``BufferError`` means a view still exists — kept for
  the next purge).

Transport selection mirrors the kernel-mode machinery: programmatic
override first (:func:`set_transport_mode`, the CLI's ``--transport``),
then ``$REPRO_PARALLEL_TRANSPORT``, then the default ``shm``. The
``pickle`` mode short-circuits everything here and ships payloads
exactly as the pre-shm executor did.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "MIN_SHM_BYTES",  # milback: disable=ML014 — public lift-threshold knob (tests)
    "TRANSPORT_ENV",
    "TRANSPORT_MODES",
    "Packed",  # milback: disable=ML014 — public transport envelope type
    "destroy",
    "ensure_tracker",
    "pack",
    "purge_attached",
    "set_transport_mode",
    "transport_mode",
    "unpack_copies",
    "unpack_views",
]

#: Environment variable consulted when no programmatic override is set.
TRANSPORT_ENV = "REPRO_PARALLEL_TRANSPORT"

#: Recognized transport modes.
TRANSPORT_MODES = ("shm", "pickle")

#: Arrays below this many bytes stay on the pickle path: the fixed cost
#: of a ref + arena slot only beats pickle for payloads of real size.
MIN_SHM_BYTES = 4096

#: Arena slots are aligned so every array view starts on a cache line.
_ALIGN = 64

#: Programmatic override (CLI ``--transport``); ``None`` defers to env.
_OVERRIDE: str | None = None

#: Worker-side mappings whose views may still be alive (see purge).
_ATTACHED: list[shared_memory.SharedMemory] = []


def _validate(mode: str) -> str:
    if mode not in TRANSPORT_MODES:
        raise ConfigurationError(
            f"unknown transport mode {mode!r}; choose from "
            f"{', '.join(TRANSPORT_MODES)}"
        )
    return mode


def transport_mode() -> str:
    """The active transport: override, then the env var, then ``shm``."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    raw = os.environ.get(TRANSPORT_ENV, "").strip().lower()
    if not raw:
        return "shm"
    return _validate(raw)


def set_transport_mode(mode: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide transport override."""
    global _OVERRIDE
    _OVERRIDE = None if mode is None else _validate(mode)


@dataclass(frozen=True)
class _Slot:
    """Placeholder left in a packed payload where an array was lifted."""

    index: int


@dataclass(frozen=True)
class _ArrayRef:
    """Location and layout of one lifted array inside the arena."""

    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class Packed:
    """The pickle-side remainder of a payload plus its arena handle.

    ``payload`` is the original structure with every lifted array
    replaced by a :class:`_Slot`; ``arena`` is the shared-memory
    segment name (``None`` when nothing qualified and ``payload`` is
    the untouched original); ``nbytes`` is the total array bytes moved
    through the arena.
    """

    payload: Any
    arena: str | None
    nbytes: int
    refs: tuple[_ArrayRef, ...]


def _eligible(value: Any) -> bool:
    return (
        isinstance(value, np.ndarray)
        and not value.dtype.hasobject
        and value.nbytes >= MIN_SHM_BYTES
    )


def _lift(obj: Any, arrays: list[np.ndarray]) -> Any:
    """Replace qualifying arrays in lists/tuples/dicts with slots."""
    if _eligible(obj):
        arrays.append(obj)
        return _Slot(len(arrays) - 1)
    if isinstance(obj, list):
        return [_lift(item, arrays) for item in obj]
    if isinstance(obj, tuple):
        return tuple(_lift(item, arrays) for item in obj)
    if isinstance(obj, dict):
        return {key: _lift(value, arrays) for key, value in obj.items()}
    return obj


def _fill(obj: Any, values: list[np.ndarray]) -> Any:
    """Inverse of :func:`_lift`: splice arrays back over their slots."""
    if isinstance(obj, _Slot):
        return values[obj.index]
    if isinstance(obj, list):
        return [_fill(item, values) for item in obj]
    if isinstance(obj, tuple):
        return tuple(_fill(item, values) for item in obj)
    if isinstance(obj, dict):
        return {key: _fill(value, values) for key, value in obj.items()}
    return obj


def _aligned(nbytes: int) -> int:
    return -(-nbytes // _ALIGN) * _ALIGN


def pack(obj: Any) -> tuple[Packed, shared_memory.SharedMemory | None]:
    """Lift large ndarrays out of ``obj`` into one fresh arena.

    Returns the pickle-side :class:`Packed` remainder and the arena
    handle (``None`` when nothing qualified). The caller owns the
    segment: the creating side must eventually :func:`destroy` it (or,
    for worker-side result arenas, close its mapping and leave the
    unlink to the parent's :func:`unpack_copies`).
    """
    arrays: list[np.ndarray] = []
    payload = _lift(obj, arrays)
    if not arrays:
        return Packed(obj, None, 0, ()), None
    contiguous = [np.ascontiguousarray(array) for array in arrays]
    offsets = []
    total = 0
    for array in contiguous:
        offsets.append(total)
        total += _aligned(array.nbytes)
    arena = shared_memory.SharedMemory(create=True, size=total)
    try:
        refs = []
        for array, offset in zip(contiguous, offsets):
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=arena.buf, offset=offset
            )
            view[...] = array
            del view
            refs.append(_ArrayRef(offset, array.shape, array.dtype.str))
        return Packed(payload, arena.name, total, tuple(refs)), arena
    except BaseException:  # milback: disable=ML004 — cleanup-and-reraise: the arena must never leak
        destroy(arena)
        raise


def _views(packed: Packed, arena: shared_memory.SharedMemory) -> list[np.ndarray]:
    return [
        np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=arena.buf, offset=ref.offset
        )
        for ref in packed.refs
    ]


def unpack_views(packed: Packed) -> Any:
    """Worker side: rebuild the payload with views into the arena.

    The views are private per-item regions of the arena copy, so a
    trial function sees the same mutability semantics the pickle path
    gives it. The attached mapping is parked in the process-local list
    for :func:`purge_attached`; the parent unlinks the segment once the
    chunk result arrives.
    """
    if packed.arena is None:
        return packed.payload
    arena = shared_memory.SharedMemory(name=packed.arena)
    _ATTACHED.append(arena)
    return _fill(packed.payload, _views(packed, arena))


def unpack_copies(packed: Packed) -> Any:
    """Parent side: rebuild the payload with owned copies, then unlink."""
    if packed.arena is None:
        return packed.payload
    arena = shared_memory.SharedMemory(name=packed.arena)
    try:
        values = [np.array(view) for view in _views(packed, arena)]
        return _fill(packed.payload, values)
    finally:
        destroy(arena)


def purge_attached() -> None:
    """Close worker-side mappings whose trial views have died.

    A ``BufferError`` means some view is still exported; the mapping is
    kept for the next purge (and dies with the worker process at the
    latest).
    """
    kept = []
    for arena in _ATTACHED:
        try:
            arena.close()
        except BufferError:
            kept.append(arena)
    _ATTACHED[:] = kept


def destroy(arena: shared_memory.SharedMemory) -> None:
    """Close and unlink one arena, tolerating every partial state."""
    try:
        arena.close()
    except BufferError:
        # A view is still exported somewhere; the mapping dies with the
        # process, and the unlink below still reclaims the segment.
        pass
    try:
        arena.unlink()
    except FileNotFoundError:
        pass


def ensure_tracker() -> None:
    """Spawn the resource tracker before the pool forks workers.

    Forked children inherit the parent's tracker pipe, so every arena —
    parent- or worker-created — registers with one shared tracker and a
    single parent-side unlink leaves it clean. Without this, the first
    worker-side arena would spawn a per-worker tracker that outlives
    the segment and warns about (already unlinked) leaks at exit.
    """
    resource_tracker.ensure_running()
