"""Command-line front end: ``python -m repro.lint`` / ``milback-lint``.

Exit status: 0 when no findings, 1 when any finding is reported, 2 on
usage errors (unknown rule id, missing path, bad git revision).
"""
# milback: disable-file=ML007 — this module IS the CLI; stdout/stderr are its interface

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Sequence

from repro.errors import StaticAnalysisError
from repro.lint.core import Finding, all_rules
from repro.lint.driver import LintReport, run_lint
from repro.lint.sarif import render_sarif

__all__ = ["build_parser", "main"]  # milback: disable=ML014 — public CLI surface


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="milback-lint",
        description="Domain-aware static analysis for the MilBack codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help="worker processes for file analysis "
        "(default: $REPRO_MAX_WORKERS, serial when unset; 0 = all cores)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update the findings cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="findings cache location (default: .lint_cache)",
    )
    parser.add_argument(
        "--changed-since",
        metavar="REV",
        help="report only findings in files changed since git revision REV "
        "(the whole project is still indexed for cross-file rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append a per-rule finding count and cache stats to text output",
    )
    return parser


def _split(spec: str | None) -> list[str] | None:
    if spec is None:
        return None
    return [part.strip() for part in spec.split(",") if part.strip()]


def _render_text(report: LintReport, statistics: bool) -> str:
    findings = report.findings
    lines = [finding.render() for finding in findings]
    if statistics:
        counts: dict[str, int] = {}
        for finding in findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        if counts:
            lines.append("")
        for rule_id in sorted(counts):
            lines.append(f"{rule_id}: {counts[rule_id]}")
        lines.append("")
        lines.append(
            f"files: {report.files_total}  cache hits: {report.cache_hits}  "
            f"misses: {report.cache_misses}  workers: {report.workers}  "
            f"wall: {report.duration_s:.3f}s"
        )
    if findings:
        lines.append(f"Found {len(findings)} finding(s).")
    else:
        lines.append("All checks passed.")
    return "\n".join(lines)


def _render_json(findings: list[Finding]) -> str:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    payload = {
        "tool": "milback-lint",
        "findings": [finding.to_dict() for finding in findings],
        "summary": {"total": len(findings), "by_rule": counts},
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_cls in all_rules():
            print(f"{rule_cls.rule_id}  {rule_cls.name}")
            print(f"       {rule_cls.description}")
        return 0

    try:
        report = run_lint(
            options.paths,
            select=_split(options.select),
            ignore=_split(options.ignore),
            jobs=options.jobs,
            use_cache=not options.no_cache,
            cache_dir=options.cache_dir,
            changed_since=options.changed_since,
        )
    except StaticAnalysisError as exc:
        print(f"milback-lint: error: {exc}", file=sys.stderr)
        return 2

    if options.format == "sarif":
        rendered = render_sarif(report.findings)
    elif options.format == "json":
        rendered = _render_json(report.findings)
    else:
        rendered = _render_text(report, options.statistics)

    if options.output:
        Path(options.output).write_text(rendered + "\n", encoding="utf-8")
    else:
        try:
            print(rendered)
            sys.stdout.flush()
        except BrokenPipeError:
            # Downstream pager/head closed early; the findings still determine
            # status, and redirecting stdout keeps the interpreter's shutdown
            # flush from printing a spurious traceback.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
