"""Rule engine for :mod:`repro.lint`.

The engine is deliberately small: a :class:`Rule` walks one parsed
module (:class:`ModuleContext`) and yields :class:`Finding` objects; a
registry maps rule ids to rule classes; :func:`lint_paths` discovers
``.py`` files, applies every selected rule, filters suppressed findings,
and returns the rest sorted by location.

Suppression syntax (mirrors the classic linter idiom, but namespaced so
it can never collide with ``noqa``/``pylint`` pragmas):

* ``# milback: disable=ML001`` — suppress ML001 on this physical line.
* ``# milback: disable=ML001,ML003`` — several rules, comma separated.
* ``# milback: disable-file=ML006`` — suppress for the whole module;
  by convention this lives in the module's first comment block.
* ``all`` is accepted in place of a rule id and mutes every rule.

A suppression comment should always carry a human justification after
the pragma, e.g. ``# milback: disable=ML003 — exact sentinel compare``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.errors import StaticAnalysisError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.project import ProjectContext

__all__ = [
    "Severity",
    "Finding",
    "ModuleContext",
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "get_rule",
    "lint_source",
    "lint_paths",
    "iter_python_files",
]

#: Rule id for files the engine itself cannot parse.
PARSE_ERROR_RULE = "ML000"

_PRAGMA_RE = re.compile(
    r"#\s*milback:\s*(?P<kind>disable|disable-file)\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+)"
)


class Severity(Enum):
    """How seriously a finding should be taken by CI."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = field(default=Severity.ERROR, compare=False)

    def render(self) -> str:
        """``path:line:col: ML00X message`` — the classic text format."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} [{self.severity}] {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """One parsed module plus everything rules commonly need."""

    path: str
    source: str
    tree: ast.Module
    line_suppressions: dict[int, frozenset[str]]
    file_suppressions: frozenset[str]

    @classmethod
    def from_source(cls, source: str, path: str = "<string>") -> "ModuleContext":
        """Parse ``source``; raises :class:`SyntaxError` on bad input."""
        tree = ast.parse(source, filename=path)
        per_line, whole_file = _parse_suppressions(source)
        return cls(
            path=path,
            source=source,
            tree=tree,
            line_suppressions=per_line,
            file_suppressions=whole_file,
        )

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``rule_id`` is muted at ``line`` (or file-wide)."""
        if "all" in self.file_suppressions or rule_id in self.file_suppressions:
            return True
        on_line = self.line_suppressions.get(line, frozenset())
        return "all" in on_line or rule_id in on_line

    def finding(
        self,
        rule: "Rule",
        node: ast.AST | None,
        message: str,
        *,
        line: int | None = None,
        col: int | None = None,
    ) -> Finding:
        """Build a :class:`Finding` for ``rule`` anchored at ``node``."""
        at_line = line if line is not None else getattr(node, "lineno", 1)
        at_col = col if col is not None else getattr(node, "col_offset", 0)
        return Finding(
            path=self.path,
            line=at_line,
            col=at_col + 1,
            rule_id=rule.rule_id,
            message=message,
            severity=rule.severity,
        )


def _parse_suppressions(source: str) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
    """Extract ``# milback: disable`` pragmas via the tokenizer.

    Tokenizing (rather than regexing raw lines) keeps pragmas inside
    string literals from being honoured by accident.
    """
    per_line: dict[int, frozenset[str]] = {}
    whole_file: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                continue
            rules = frozenset(
                part.strip() for part in match.group("rules").split(",") if part.strip()
            )
            if match.group("kind") == "disable-file":
                whole_file |= rules
            else:
                per_line[tok.start[0]] = per_line.get(tok.start[0], frozenset()) | rules
    except tokenize.TokenError:
        # Unparseable token stream: the engine reports the SyntaxError
        # elsewhere; there is nothing to suppress.
        pass
    return per_line, frozenset(whole_file)


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    Register with the :func:`register` decorator so the CLI and test
    suite can discover them.
    """

    rule_id: str = "ML999"
    name: str = "unnamed-rule"
    description: str = ""
    severity: Severity = Severity.ERROR

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for ``module``.  Subclasses must override."""
        raise StaticAnalysisError(
            f"rule {type(self).__name__} does not implement check()"
        )


class ProjectRule(Rule):
    """Base class for whole-program rules.

    A project rule never sees files one at a time: the engine hands it a
    :class:`repro.lint.project.ProjectContext` — the cached one-pass
    index of every module's imports, exports and emitted obs names —
    and the rule yields findings anchored anywhere in the project.
    Per-module suppression pragmas still apply; the engine filters with
    the suppression tables embedded in the module summaries.
    """

    requires_project: bool = True

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise StaticAnalysisError(
            f"project rule {type(self).__name__} must be run via check_project()"
        )

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        """Yield findings for the whole project.  Subclasses override."""
        raise StaticAnalysisError(
            f"rule {type(self).__name__} does not implement check_project()"
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding ``rule_cls`` to the global registry."""
    rule_id = rule_cls.rule_id
    if not re.fullmatch(r"ML\d{3}", rule_id):
        raise StaticAnalysisError(f"bad rule id {rule_id!r}: expected MLnnn")
    existing = _REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_cls:
        raise StaticAnalysisError(
            f"duplicate rule id {rule_id}: {existing.__name__} vs {rule_cls.__name__}"
        )
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def all_rules() -> list[type[Rule]]:
    """Every registered rule class, sorted by rule id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> type[Rule]:
    """Look up one rule class; raises for unknown ids."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise StaticAnalysisError(
            f"unknown rule id {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def _select_rules(
    select: Sequence[str] | None, ignore: Sequence[str] | None
) -> list[Rule]:
    chosen = [get_rule(rid) for rid in select] if select else all_rules()
    ignored = set(ignore or ())
    for rid in ignored:
        get_rule(rid)  # validate the id even when ignoring it
    return [cls() for cls in chosen if cls.rule_id not in ignored]


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint one in-memory module and return unsuppressed findings.

    Project rules run against a single-module project here: layering
    and determinism checks work file-locally, while genuinely
    cross-file analyses (cycles, catalogue drift, dead exports) need
    :func:`lint_paths` over the real tree to see anything.
    """
    try:
        module = ModuleContext.from_source(source, path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule_id=PARSE_ERROR_RULE,
                message=f"could not parse module: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    per_file, project_rules = _partition_rules(_select_rules(select, ignore))
    for rule in per_file:
        for finding in rule.check(module):
            if not module.is_suppressed(finding.rule_id, finding.line):
                findings.append(finding)
    if project_rules:
        from repro.lint.project import ProjectContext, build_summary

        summary = build_summary(
            path, module.tree, module.line_suppressions, module.file_suppressions
        )
        project = ProjectContext([summary])
        for rule in project_rules:
            for finding in rule.check_project(project):
                if not project.is_suppressed(finding.rule_id, finding.path, finding.line):
                    findings.append(finding)
    return sorted(findings)


def _partition_rules(rules: Sequence[Rule]) -> tuple[list[Rule], list[Rule]]:
    """Split selected rule instances into (per-file, project) phases."""
    per_file = [r for r in rules if not getattr(r, "requires_project", False)]
    project = [r for r in rules if getattr(r, "requires_project", False)]
    return per_file, project


#: Directory names never descended into during file discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist", ".mypy_cache", ".ruff_cache"}


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files pass through as-is)."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path
        elif not path.exists():
            raise StaticAnalysisError(f"no such file or directory: {path}")


def lint_paths(
    paths: Iterable[str | Path],
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    reader: Callable[[Path], str] | None = None,
) -> list[Finding]:
    """Lint every Python file under ``paths`` (per-file + project rules).

    This is the simple in-process entry point; it delegates to the
    production driver (:mod:`repro.lint.driver`) with caching disabled
    and serial execution, so results are always computed fresh.
    ``reader`` exists for tests; it defaults to reading from disk.
    """
    from repro.lint.driver import run_lint

    report = run_lint(
        paths,
        select=select,
        ignore=ignore,
        reader=reader,
        use_cache=False,
        jobs=1,
    )
    return report.findings
