"""Whole-program index for cross-file lint rules.

Per-file rules see one :class:`~repro.lint.core.ModuleContext`; the
project rules (ML011 layering, ML013 obs-catalogue drift, ML014 dead
exports) need the *relationships between* modules.  This module builds
that view in one pass: every file is distilled into a
:class:`ModuleSummary` — its dotted module name, import records
(with deferred / ``TYPE_CHECKING`` flags), ``__all__`` exports,
resolved attribute chains, and every metric/span name handed to the
:mod:`repro.obs` registries — and a :class:`ProjectContext` stitches the
summaries into an import graph with cycle detection and a symbol-use
index.

Summaries are plain data (``to_dict``/``from_dict`` round-trip), which
is what makes the driver's content-hash cache work: an unchanged file
contributes its cached summary without being re-parsed, and the project
rules run over summaries alone.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import Iterable, Iterator, Mapping, Sequence

from repro.lint.imports import ImportTable, dotted_chain, resolve_relative_module

__all__ = [
    "ImportRecord",  # milback: disable=ML014 — public index datatypes for rule authors
    "MetricCall",  # milback: disable=ML014 — public index datatypes for rule authors
    "ModuleSummary",
    "ProjectContext",
    "build_summary",
    "find_catalogue_path",
    "find_usage_roots",
    "module_name_for_path",  # milback: disable=ML014 — public index helper for rule authors
    "repro_component",
    "OBS_EMIT_FUNCTIONS",  # milback: disable=ML014 — documented emitter list for rule authors
]

#: Callable names whose first string argument is a metric/span name.
OBS_EMIT_FUNCTIONS: frozenset[str] = frozenset(
    {"counter", "gauge", "histogram", "span", "event", "traced", "add_event"}
)


def module_name_for_path(path: str) -> str | None:
    """Dotted module name for a source path, if it lives under ``repro``.

    ``src/repro/sim/engine.py`` → ``repro.sim.engine``;
    ``repro/sim/__init__.py`` → ``repro.sim``.  Paths outside a
    ``repro`` tree (test fixtures, benchmarks) have no project module
    name and return None — their summaries still contribute *uses* to
    the index, just not importable modules.
    """
    parts = PurePath(path).parts
    try:
        start = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return None
    mod_parts = list(parts[start:])
    mod_parts[-1] = PurePath(mod_parts[-1]).stem
    if mod_parts[-1] == "__init__":
        mod_parts.pop()
    return ".".join(mod_parts) if mod_parts else None


def repro_component(module: str) -> str | None:
    """Top-level component under ``repro`` (``repro.sim.engine`` → ``sim``).

    The root package itself and non-``repro`` modules return None;
    top-level modules (``repro.cli``) return their own name (``cli``).
    """
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


@dataclass(frozen=True)
class ImportRecord:
    """One import statement target inside a module."""

    module: str  #: absolute dotted module the import names
    name: str | None  #: symbol for ``from module import name``, else None
    lineno: int
    col: int
    deferred: bool  #: inside a function/method body (lazy import)
    type_checking: bool  #: under an ``if TYPE_CHECKING:`` guard
    star: bool = False  #: ``from module import *``
    asname: str | None = None  #: local rebinding via ``as``

    @property
    def bound_name(self) -> str | None:
        """The name the import binds locally (None for star imports)."""
        return self.asname if self.asname is not None else self.name

    def to_dict(self) -> dict[str, object]:
        return {
            "module": self.module,
            "name": self.name,
            "lineno": self.lineno,
            "col": self.col,
            "deferred": self.deferred,
            "type_checking": self.type_checking,
            "star": self.star,
            "asname": self.asname,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "ImportRecord":
        return cls(**raw)  # type: ignore[arg-type]


@dataclass(frozen=True)
class MetricCall:
    """One metric/span name handed to an obs-registry callable."""

    pattern: str  #: literal name, or glob with ``*`` for f-string holes
    literal: bool
    lineno: int
    col: int

    def to_dict(self) -> dict[str, object]:
        return {
            "pattern": self.pattern,
            "literal": self.literal,
            "lineno": self.lineno,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "MetricCall":
        return cls(**raw)  # type: ignore[arg-type]


@dataclass
class ModuleSummary:
    """Everything the project rules need to know about one file."""

    path: str
    module: str | None
    is_init: bool
    imports: list[ImportRecord] = field(default_factory=list)
    exports: list[tuple[str, int]] = field(default_factory=list)
    chains: list[str] = field(default_factory=list)
    metric_calls: list[MetricCall] = field(default_factory=list)
    line_suppressions: dict[int, list[str]] = field(default_factory=dict)
    file_suppressions: list[str] = field(default_factory=list)

    @property
    def package(self) -> str | None:
        """Dotted package this module lives in (for relative imports)."""
        if self.module is None:
            return None
        if self.is_init:
            return self.module
        return self.module.rpartition(".")[0] or None

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if "all" in self.file_suppressions or rule_id in self.file_suppressions:
            return True
        on_line = self.line_suppressions.get(line, [])
        return "all" in on_line or rule_id in on_line

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "module": self.module,
            "is_init": self.is_init,
            "imports": [record.to_dict() for record in self.imports],
            "exports": [[name, lineno] for name, lineno in self.exports],
            "chains": list(self.chains),
            "metric_calls": [call.to_dict() for call in self.metric_calls],
            "line_suppressions": {
                str(line): rules for line, rules in self.line_suppressions.items()
            },
            "file_suppressions": list(self.file_suppressions),
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "ModuleSummary":
        return cls(
            path=raw["path"],  # type: ignore[arg-type]
            module=raw["module"],  # type: ignore[arg-type]
            is_init=raw["is_init"],  # type: ignore[arg-type]
            imports=[ImportRecord.from_dict(r) for r in raw["imports"]],  # type: ignore[union-attr]
            exports=[(name, lineno) for name, lineno in raw["exports"]],  # type: ignore[union-attr]
            chains=list(raw["chains"]),  # type: ignore[call-overload]
            metric_calls=[MetricCall.from_dict(r) for r in raw["metric_calls"]],  # type: ignore[union-attr]
            line_suppressions={
                int(line): list(rules)
                for line, rules in raw["line_suppressions"].items()  # type: ignore[union-attr]
            },
            file_suppressions=list(raw["file_suppressions"]),  # type: ignore[call-overload]
        )


class _SummaryVisitor(ast.NodeVisitor):
    """Single AST walk collecting imports, chains and metric calls."""

    def __init__(self, summary: ModuleSummary, table: ImportTable) -> None:
        self.summary = summary
        self.table = table
        self.depth = 0
        self.type_checking = 0

    # -- scope / guard tracking -------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_If(self, node: ast.If) -> None:
        guard = _is_type_checking_test(node.test)
        self.visit(node.test)
        if guard:
            self.type_checking += 1
        for child in node.body:
            self.visit(child)
        if guard:
            self.type_checking -= 1
        for child in node.orelse:
            self.visit(child)

    # -- imports -----------------------------------------------------
    def _record(
        self,
        module: str,
        name: str | None,
        node: ast.stmt,
        star: bool = False,
        asname: str | None = None,
    ) -> None:
        self.summary.imports.append(
            ImportRecord(
                module=module,
                name=name,
                lineno=node.lineno,
                col=node.col_offset,
                deferred=self.depth > 0,
                type_checking=self.type_checking > 0,
                star=star,
                asname=asname,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._record(alias.name, None, node, asname=alias.asname)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = resolve_relative_module(node.module, node.level, self.summary.package)
        if module is None:
            return
        for alias in node.names:
            if alias.name == "*":
                self._record(module, None, node, star=True)
            else:
                self._record(module, alias.name, node, asname=alias.asname)

    # -- attribute chains and metric calls ---------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        resolved = self.table.resolve(node)
        if resolved is not None:
            self.summary.chains.append(resolved)
            return  # the full chain subsumes its sub-chains
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        callee = node.func
        name = None
        if isinstance(callee, ast.Attribute):
            name = callee.attr
        elif isinstance(callee, ast.Name):
            name = callee.id
        if name in OBS_EMIT_FUNCTIONS:
            arg = node.args[0] if node.args else None
            if arg is None:
                for kw in node.keywords:
                    if kw.arg == "name":
                        arg = kw.value
            self._record_metric(arg)
            if name == "traced":
                for kw in node.keywords:
                    if kw.arg == "count":
                        self._record_metric(kw.value)
        self.generic_visit(node)

    def _record_metric(self, arg: ast.expr | None) -> None:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if arg.value:
                self.summary.metric_calls.append(
                    MetricCall(arg.value, True, arg.lineno, arg.col_offset)
                )
        elif isinstance(arg, ast.JoinedStr):
            pattern = "".join(
                part.value if isinstance(part, ast.Constant) else "*"
                for part in arg.values
            )
            pattern = _collapse_stars(pattern)
            if pattern.strip("*"):
                self.summary.metric_calls.append(
                    MetricCall(pattern, False, arg.lineno, arg.col_offset)
                )


def _collapse_stars(pattern: str) -> str:
    while "**" in pattern:
        pattern = pattern.replace("**", "*")
    return pattern


def _is_type_checking_test(test: ast.expr) -> bool:
    chain = dotted_chain(test)
    return chain in ("TYPE_CHECKING", "typing.TYPE_CHECKING", "t.TYPE_CHECKING")


def build_summary(
    path: str,
    tree: ast.Module,
    line_suppressions: Mapping[int, Iterable[str]],
    file_suppressions: Iterable[str],
) -> ModuleSummary:
    """Distil one parsed module into its :class:`ModuleSummary`."""
    module = module_name_for_path(path)
    summary = ModuleSummary(
        path=path,
        module=module,
        is_init=PurePath(path).name == "__init__.py",
        line_suppressions={line: sorted(rules) for line, rules in line_suppressions.items()},
        file_suppressions=sorted(file_suppressions),
    )
    table = ImportTable.from_tree(tree, package=summary.package)
    visitor = _SummaryVisitor(summary, table)
    visitor.visit(tree)
    # __all__ exports.
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            continue
        value = node.value
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    summary.exports.append((element.value, element.lineno))
    summary.chains = sorted(set(summary.chains))
    return summary


class ProjectContext:
    """The stitched whole-program view the project rules run against.

    ``modules`` are the linted files; ``aux`` summaries come from the
    usage roots (tests/, benchmarks/, examples/) and extend the
    symbol-use and metric-emission indexes without being lint targets
    themselves.
    """

    def __init__(
        self,
        summaries: Sequence[ModuleSummary],
        aux: Sequence[ModuleSummary] = (),
        catalogue_path: str | None = None,
    ) -> None:
        self.summaries = list(summaries)
        self.aux = list(aux)
        self.catalogue_path = catalogue_path
        self.by_module: dict[str, ModuleSummary] = {
            s.module: s for s in self.summaries if s.module is not None
        }
        self.by_path: dict[str, ModuleSummary] = {s.path: s for s in self.summaries}
        self._use_paths: dict[tuple[str, str], set[str]] | None = None
        self._star_paths: dict[str, set[str]] | None = None

    # -- import graph ------------------------------------------------
    def resolve_import_target(self, record: ImportRecord) -> str:
        """The module an import record actually lands on.

        ``from repro.sim import cache`` targets module ``repro.sim.cache``
        when that is a project module, otherwise the named package.
        """
        if record.name is not None:
            candidate = f"{record.module}.{record.name}"
            if candidate in self.by_module:
                return candidate
        return record.module

    def import_graph(self) -> dict[str, set[str]]:
        """Top-level, runtime (non-``TYPE_CHECKING``) project-module edges."""
        graph: dict[str, set[str]] = {m: set() for m in self.by_module}
        for summary in self.summaries:
            if summary.module is None:
                continue
            for record in summary.imports:
                if record.deferred or record.type_checking:
                    continue
                target = self.resolve_import_target(record)
                if target in self.by_module and target != summary.module:
                    graph[summary.module].add(target)
        return graph

    def cycles(self) -> list[list[str]]:
        """Strongly connected components of size > 1, deterministic order."""
        graph = self.import_graph()
        order = sorted(graph)
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = 0
        sccs: list[list[str]] = []

        for root in order:
            if root in index:
                continue
            # Iterative Tarjan: (node, iterator over sorted successors).
            work: list[tuple[str, Iterator[str]]] = []
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            work.append((root, iter(sorted(graph[root]))))
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = low[succ] = counter
                        counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(graph[succ]))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    if len(scc) > 1:
                        sccs.append(sorted(scc))
        return sorted(sccs)

    # -- symbol uses -------------------------------------------------
    def _build_uses(self) -> None:
        """Index (module, name) → referencing paths over all summaries.

        A chain ``repro.sim.engine.run`` contributes every split —
        ``(repro, sim)``, ``(repro.sim, engine)``, ``(repro.sim.engine,
        run)`` — so prefix matching reduces to exact pair lookup.
        """
        use_paths: dict[tuple[str, str], set[str]] = {}
        star_paths: dict[str, set[str]] = {}
        for summary in list(self.summaries) + list(self.aux):
            for record in summary.imports:
                if record.star:
                    star_paths.setdefault(record.module, set()).add(summary.path)
                elif record.name is not None:
                    use_paths.setdefault((record.module, record.name), set()).add(
                        summary.path
                    )
            for chain in summary.chains:
                parts = chain.split(".")
                for split in range(1, len(parts)):
                    key = (".".join(parts[:split]), parts[split])
                    use_paths.setdefault(key, set()).add(summary.path)
        self._use_paths = use_paths
        self._star_paths = star_paths

    def symbol_used(
        self, module: str, name: str, *, exclude_paths: Iterable[str] = ()
    ) -> bool:
        """True when ``module.name`` is referenced outside ``exclude_paths``."""
        if self._use_paths is None or self._star_paths is None:
            self._build_uses()
        assert self._use_paths is not None and self._star_paths is not None
        paths = set(self._use_paths.get((module, name), ()))
        paths |= self._star_paths.get(module, set())
        paths.difference_update(exclude_paths)
        return bool(paths)

    # -- metric emissions --------------------------------------------
    def metric_calls(self, *, include_aux_benchmarks: bool = True) -> list[tuple[ModuleSummary, MetricCall]]:
        """Every obs-registry name emission across the project."""
        out: list[tuple[ModuleSummary, MetricCall]] = []
        for summary in self.summaries:
            for call in summary.metric_calls:
                out.append((summary, call))
        if include_aux_benchmarks:
            for summary in self.aux:
                if "benchmarks" in PurePath(summary.path).parts:
                    for call in summary.metric_calls:
                        out.append((summary, call))
        return out

    def is_suppressed(self, rule_id: str, path: str, line: int) -> bool:
        summary = self.by_path.get(path)
        if summary is None:
            return False
        return summary.is_suppressed(rule_id, line)


def find_catalogue_path(paths: Iterable[str | Path]) -> str | None:
    """Locate ``docs/OBSERVABILITY.md`` upward from the lint roots."""
    for raw in paths:
        probe = Path(raw).resolve()
        for candidate in [probe, *probe.parents]:
            doc = candidate / "docs" / "OBSERVABILITY.md"
            if doc.is_file():
                return str(doc)
    return None


def find_usage_roots(paths: Iterable[str | Path]) -> list[Path]:
    """Auxiliary usage/emission roots (tests, benchmarks, examples)."""
    roots: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        probe = Path(raw).resolve()
        for candidate in [probe, *probe.parents]:
            if not (candidate / "docs" / "OBSERVABILITY.md").is_file():
                continue
            for name in ("tests", "benchmarks", "examples"):
                root = candidate / name
                if root.is_dir() and root not in seen:
                    seen.add(root)
                    roots.append(root)
            break
    return roots
