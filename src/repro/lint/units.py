"""Unit-suffix inference shared by the ML002 and ML003 rules.

The codebase convention (see ``src/repro/constants.py`` and
``src/repro/utils/units.py``) is that a name holding a physical quantity
carries its unit as a trailing suffix: ``chirp_bw_hz``, ``range_m``,
``tx_power_dbm``, ``heading_deg``.  This module recognises those
suffixes and propagates them through the handful of expression shapes
where the unit of the result is unambiguous:

* alias:           ``f = start_hz``                 → Hz
* attribute/index: ``f = chirp.start_hz``,
                   ``f = freqs_hz[0]``              → Hz
* same-unit sum:   ``f = start_hz + offset_hz``     → Hz
* numeric scale:   ``f = 0.5 * span_hz``            → Hz
* negation:        ``f = -doppler_hz``              → Hz

Anything else — calls, mixed-unit arithmetic, divisions (which usually
produce a *different* or dimensionless quantity) — deliberately infers
nothing, keeping false positives near zero at the cost of some misses.
"""

from __future__ import annotations

import ast

__all__ = ["UNIT_SUFFIXES", "unit_of_name", "infer_unit"]  # milback: disable=ML014 — documented rule knob

#: Recognised unit suffixes (lower-case; names are matched case-insensitively).
#: Compound suffixes (``v_per_sqrt_w``) are listed before their tails would
#: match so that the most specific suffix wins.
UNIT_SUFFIXES: frozenset[str] = frozenset(
    {
        # frequency / rate
        "hz", "khz", "mhz", "ghz", "bps", "kbps", "mbps", "gbps", "baud",
        # length / geometry
        "m", "mm", "cm", "km", "wavelengths",
        # time
        "s", "ms", "us", "ns", "ps",
        # power / gain (log and linear)
        "db", "dbi", "dbm", "dbc", "w", "mw", "uw", "nw",
        # angle
        "rad", "deg",
        # energy / electrical (no bare ampere suffixes: `_a`/`_b` are port
        # labels in this codebase — switch_a, detector_b — not currents)
        "j", "mj", "uj", "nj", "pj", "v", "mv", "uv", "ohm",
        # temperature / misc physics
        "k", "kelvin",
        # compound rates common in this codebase
        "hz_per_s", "m_per_s", "deg_per_s", "rad_per_s", "j_per_bit",
        "v_per_sqrt_w", "np_per_m", "db_per_m", "db_per_km", "dbm_per_hz",
        "v_per_rt_hz", "w_per_hz", "s_per_m",
    }
)

#: Longest suffix is 4 words (``v_per_sqrt_w``).
_MAX_SUFFIX_WORDS = 4


def unit_of_name(name: str) -> str | None:
    """The unit suffix carried by ``name``, or None.

    ``BAND_WIDTH_HZ`` → ``"hz"``; ``range_m`` → ``"m"``; ``count`` → None.
    A suffix only counts when separated by an underscore, so ``alarm``
    does not read as amperes.
    """
    words = name.lower().split("_")
    if len(words) < 2:
        return None
    for take in range(min(_MAX_SUFFIX_WORDS, len(words) - 1), 0, -1):
        candidate = "_".join(words[-take:])
        if candidate in UNIT_SUFFIXES:
            return candidate
    return None


def _is_number(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_number(node.operand)
    return False


def infer_unit(node: ast.expr) -> str | None:
    """Unit of the expression ``node``, or None when not provable."""
    if isinstance(node, ast.Name):
        return unit_of_name(node.id)
    if isinstance(node, ast.Attribute):
        return unit_of_name(node.attr)
    if isinstance(node, ast.Subscript):
        return infer_unit(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return infer_unit(node.operand)
    if isinstance(node, ast.IfExp):
        body, orelse = infer_unit(node.body), infer_unit(node.orelse)
        return body if body is not None and body == orelse else None
    if isinstance(node, ast.BinOp):
        left, right = node.left, node.right
        if isinstance(node.op, (ast.Add, ast.Sub)):
            lu, ru = infer_unit(left), infer_unit(right)
            return lu if lu is not None and lu == ru else None
        if isinstance(node.op, ast.Mult):
            lu, ru = infer_unit(left), infer_unit(right)
            if lu is not None and ru is None and _is_number(right):
                return lu
            if ru is not None and lu is None and _is_number(left):
                return ru
            return None
        if isinstance(node.op, ast.Div):
            lu = infer_unit(left)
            if lu is not None and _is_number(right):
                return lu
            return None
    return None
