"""Production lint driver: content-hash cache, parallel parse, incremental.

:func:`repro.lint.core.lint_paths` is the simple always-fresh entry
point; this module is what CI and ``python -m repro.lint`` actually run.
It layers three things over the core engine without changing any rule:

* **Caching** — every file's per-file findings and its
  :class:`~repro.lint.project.ModuleSummary` are stored under
  ``.lint_cache/`` keyed by a content hash, so a warm run re-parses only
  what changed.  The key mixes in an *engine fingerprint* (a hash of the
  lint package's own sources plus the registered rule ids), so editing a
  rule invalidates every entry at once.  Cached findings cover **all**
  per-file rules and are filtered down to the current ``--select`` at
  load time, which keeps the cache selection-independent.
* **Parallelism** — cache misses are analysed via
  :func:`repro.parallel.parallel_map`, the repo's fork-based
  deterministic executor, so a cold run uses every allowed core and the
  findings are bitwise-identical to a serial run.
* **Incrementality** — ``changed_since=<rev>`` still indexes the whole
  project (project rules need the full import graph; the cache makes
  that cheap) but reports only findings located in files ``git diff``
  says changed since ``rev``, plus untracked files.

Project rules (ML011+) always run: they consume cached summaries, not
ASTs, so the whole-program phase costs milliseconds even on a fully
warm cache.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro import obs
from repro.errors import StaticAnalysisError
from repro.lint.core import (
    PARSE_ERROR_RULE,
    Finding,
    ModuleContext,
    Severity,
    _partition_rules,
    _select_rules,
    all_rules,
    iter_python_files,
)
from repro.lint.project import (
    ModuleSummary,
    ProjectContext,
    build_summary,
    find_catalogue_path,
    find_usage_roots,
)

__all__ = [
    "LintReport",
    "run_lint",
    "engine_fingerprint",
    "DEFAULT_CACHE_DIR",
    "CACHE_FORMAT",  # milback: disable=ML014 — on-disk cache contract
]

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".lint_cache"

#: Bump when the cache payload layout changes.
CACHE_FORMAT = 1

_Reader = Callable[[Path], str]


@dataclass
class LintReport:
    """One driver run: the findings plus how they were produced."""

    findings: list[Finding]
    files_total: int
    cache_hits: int
    cache_misses: int
    duration_s: float
    workers: int
    rule_ids: list[str]
    changed_since: str | None = None

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of files served from cache (0.0 on an empty run)."""
        if self.files_total == 0:
            return 0.0
        return self.cache_hits / self.files_total


def engine_fingerprint() -> str:
    """Hash of the lint package's sources and the registered rule set.

    Any change to the engine, a rule module, the layering allowlist or
    the set of registered rule ids yields a new fingerprint and thereby
    invalidates every cache entry — correctness never depends on a
    stale-rule heuristic.
    """
    digest = hashlib.sha256()
    digest.update(f"format={CACHE_FORMAT}".encode())
    package_dir = Path(__file__).resolve().parent
    for source in sorted(package_dir.rglob("*.py")) + sorted(package_dir.rglob("*.txt")):
        digest.update(source.name.encode())
        digest.update(source.read_bytes())
    digest.update(",".join(cls.rule_id for cls in all_rules()).encode())
    return digest.hexdigest()


def _cache_key(fingerprint: str, path: str, source: str) -> str:
    digest = hashlib.sha256()
    digest.update(fingerprint.encode())
    digest.update(path.encode())
    digest.update(b"\x00")
    digest.update(source.encode())
    return digest.hexdigest()


def _finding_from_dict(raw: dict[str, object]) -> Finding:
    return Finding(
        path=str(raw["path"]),
        line=int(raw["line"]),  # type: ignore[arg-type]
        col=int(raw["col"]),  # type: ignore[arg-type]
        rule_id=str(raw["rule"]),
        message=str(raw["message"]),
        severity=Severity(str(raw["severity"])),
    )


def _analyze_file(item: tuple[str, str]) -> dict[str, object]:
    """Worker payload: all per-file rule findings + the module summary.

    Runs *every* registered per-file rule (not just the selected ones)
    so the resulting payload is valid for any later rule selection; the
    driver filters at load time.  Findings are post-suppression.
    """
    path, source = item
    try:
        module = ModuleContext.from_source(source, path)
    except SyntaxError as exc:
        parse_finding = Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule_id=PARSE_ERROR_RULE,
            message=f"could not parse module: {exc.msg}",
        )
        return {"findings": [parse_finding.to_dict()], "summary": None}
    per_file, _ = _partition_rules([cls() for cls in all_rules()])
    findings: list[Finding] = []
    for rule in per_file:
        for finding in rule.check(module):
            if not module.is_suppressed(finding.rule_id, finding.line):
                findings.append(finding)
    summary = build_summary(
        path, module.tree, module.line_suppressions, module.file_suppressions
    )
    return {
        "findings": [finding.to_dict() for finding in sorted(findings)],
        "summary": summary.to_dict(),
    }


def _default_reader(path: Path) -> str:
    try:
        return path.read_text(encoding="utf-8")
    except OSError as exc:
        raise StaticAnalysisError(f"cannot read {path}: {exc}") from exc


def _git_changed_paths(rev: str, anchor: Path) -> set[str]:
    """Absolute paths changed between ``rev`` and the working tree.

    Git commands run inside ``anchor`` (the first lint root), so the
    revision is resolved against the repository being linted, not
    whatever directory the caller happens to be in.  Untracked files are
    included: a file the revision has never seen is "changed since" it
    by any useful definition.
    """
    def _git(cwd: Path, *args: str) -> str:
        try:
            proc = subprocess.run(
                ["git", *args],
                cwd=cwd,
                capture_output=True,
                text=True,
                check=True,
            )
        except FileNotFoundError as exc:
            raise StaticAnalysisError("changed-since requires git on PATH") from exc
        except subprocess.CalledProcessError as exc:
            detail = exc.stderr.strip() or exc.stdout.strip() or f"exit {exc.returncode}"
            raise StaticAnalysisError(f"git {' '.join(args)} failed: {detail}") from exc
        return proc.stdout

    probe = anchor if anchor.is_dir() else anchor.parent
    root = Path(_git(probe, "rev-parse", "--show-toplevel").strip())
    changed: set[str] = set()
    # Both listings run from the repository root so every reported name
    # is root-relative (ls-files would otherwise be cwd-relative).
    for listing in (
        _git(root, "diff", "--name-only", "-z", rev, "--"),
        _git(root, "ls-files", "--others", "--exclude-standard", "-z"),
    ):
        for name in listing.split("\0"):
            if name:
                changed.add(str((root / name).resolve()))
    return changed


def _discover(paths: Iterable[str | Path]) -> list[Path]:
    seen: set[Path] = set()
    ordered: list[Path] = []
    for path in iter_python_files(paths):
        if path not in seen:
            seen.add(path)
            ordered.append(path)
    return ordered


def run_lint(
    paths: Iterable[str | Path],
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    jobs: int | None = None,
    use_cache: bool = True,
    cache_dir: str | Path | None = None,
    changed_since: str | None = None,
    reader: _Reader | None = None,
) -> LintReport:
    """Lint ``paths`` with caching, parallelism and incremental filtering.

    Parameters mirror the CLI flags: ``jobs`` feeds
    :func:`repro.parallel.parallel_map` (None defers to
    ``$REPRO_MAX_WORKERS``), ``use_cache``/``cache_dir`` control the
    content-hash cache, and ``changed_since`` restricts *reported*
    findings to files git considers changed since that revision.
    ``reader`` exists for tests and defaults to reading from disk.
    """
    started = time.perf_counter()
    paths = list(paths)
    read = reader if reader is not None else _default_reader
    rules = _select_rules(select, ignore)
    selected_per_file, project_rules = _partition_rules(rules)
    selected_ids = {rule.rule_id for rule in selected_per_file} | {PARSE_ERROR_RULE}

    with obs.span("lint.run"):
        lint_files = _discover(paths)
        lint_set = {str(path) for path in lint_files}
        aux_files: list[Path] = []
        if project_rules:
            aux_files = [
                path
                for path in _discover(find_usage_roots(paths))
                if str(path) not in lint_set
            ]

        cache_root = Path(cache_dir) if cache_dir is not None else Path(DEFAULT_CACHE_DIR)
        fingerprint = engine_fingerprint() if use_cache else ""

        payloads: dict[str, dict[str, object]] = {}
        pending: list[tuple[str, str]] = []
        pending_keys: dict[str, str] = {}
        cache_hits = 0
        for path in [*lint_files, *aux_files]:
            path_str = str(path)
            source = read(path)
            if use_cache:
                key = _cache_key(fingerprint, path_str, source)
                entry = cache_root / key[:2] / f"{key}.json"
                if entry.is_file():
                    try:
                        payloads[path_str] = json.loads(entry.read_text(encoding="utf-8"))
                        cache_hits += 1
                        continue
                    except (OSError, ValueError):
                        pass  # corrupt entry: fall through and recompute
                pending_keys[path_str] = key
            pending.append((path_str, source))

        workers = 1
        if pending:
            result = _parallel_analyze(pending, jobs)
            workers = result[1]
            for (path_str, _), payload in zip(pending, result[0]):
                payloads[path_str] = payload
                if use_cache:
                    key = pending_keys[path_str]
                    entry = cache_root / key[:2] / f"{key}.json"
                    try:
                        entry.parent.mkdir(parents=True, exist_ok=True)
                        entry.write_text(
                            json.dumps(payload, sort_keys=True), encoding="utf-8"
                        )
                    except OSError:
                        pass  # cache is best-effort; findings are already in hand

        findings: list[Finding] = []
        summaries: list[ModuleSummary] = []
        aux_summaries: list[ModuleSummary] = []
        for path_str, payload in payloads.items():
            is_lint_target = path_str in lint_set
            if is_lint_target:
                for raw in payload["findings"]:  # type: ignore[union-attr]
                    finding = _finding_from_dict(raw)  # type: ignore[arg-type]
                    if finding.rule_id in selected_ids:
                        findings.append(finding)
            if payload["summary"] is not None:
                summary = ModuleSummary.from_dict(payload["summary"])  # type: ignore[arg-type]
                if is_lint_target:
                    summaries.append(summary)
                else:
                    aux_summaries.append(summary)

        if project_rules:
            project = ProjectContext(
                summaries,
                aux=aux_summaries,
                catalogue_path=find_catalogue_path(paths),
            )
            for rule in project_rules:
                for finding in rule.check_project(project):
                    if not project.is_suppressed(
                        finding.rule_id, finding.path, finding.line
                    ):
                        findings.append(finding)

        if changed_since is not None:
            anchor = next((Path(p).resolve() for p in paths), Path.cwd())
            changed = _git_changed_paths(changed_since, anchor)
            findings = [
                f for f in findings if str(Path(f.path).resolve()) in changed
            ]

        files_total = len(lint_files) + len(aux_files)
        obs.counter("lint.cache.hits").inc(cache_hits)
        obs.counter("lint.cache.misses").inc(files_total - cache_hits)
        obs.gauge("lint.files").set(files_total)

        report = LintReport(
            findings=sorted(findings),
            files_total=files_total,
            cache_hits=cache_hits,
            cache_misses=files_total - cache_hits,
            duration_s=time.perf_counter() - started,
            workers=workers,
            rule_ids=sorted(rule.rule_id for rule in rules),
            changed_since=changed_since,
        )
        obs.gauge("lint.findings").set(len(report.findings))
        return report


def _parallel_analyze(
    items: Sequence[tuple[str, str]], jobs: int | None
) -> tuple[list[dict[str, object]], int]:
    """Analyse ``(path, source)`` pairs via the deterministic executor.

    Returns the payloads in item order plus the worker count actually
    used (1 when the executor fell back to the serial path).
    """
    from repro.parallel import parallel_map

    result = parallel_map(_analyze_file, items, max_workers=jobs)
    return list(result.values), result.workers
