"""Module-local import/name resolution shared by lint rules.

Several rules care about *what a name actually refers to* rather than
what the attribute chain literally spells: ``import numpy.random as
npr; npr.rand()`` and ``from numpy import random; random.rand()`` are
the same legacy global-state call as ``np.random.rand()``.  The
:class:`ImportTable` built here maps every locally bound name to the
absolute dotted path it was imported as — including simple module
aliases created by assignment (``nr = np.random``) — so rules resolve
chains through the table instead of pattern-matching source text.

The resolution is deliberately module-local and flow-insensitive: a
name rebound to something other than an import simply disappears from
the table (conservative, no false positives from shadowing).
"""

from __future__ import annotations

import ast

__all__ = ["ImportTable", "dotted_chain", "resolve_relative_module"]


def dotted_chain(node: ast.expr) -> str | None:
    """``np.random.rand`` → ``"np.random.rand"`` (None when not a chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_relative_module(module: str | None, level: int, package: str | None) -> str | None:
    """Absolutise a possibly-relative ``from``-import target.

    ``package`` is the dotted package the importing module lives in
    (``repro.sim`` for ``repro/sim/engine.py``); unknown packages leave
    relative imports unresolved (None).
    """
    if level == 0:
        return module
    if package is None:
        return None
    parts = package.split(".")
    if level - 1 >= len(parts):
        return None
    base = parts[: len(parts) - (level - 1)]
    if module:
        base.append(module)
    return ".".join(base)


class ImportTable:
    """Local name → absolute dotted import path for one module."""

    def __init__(self) -> None:
        self._bindings: dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.Module, package: str | None = None) -> "ImportTable":
        """Collect import bindings (and simple module aliases) from ``tree``."""
        table = cls()
        rebound: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table._bindings[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the top name only;
                        # the rest of the chain resolves naturally.
                        top = alias.name.split(".", 1)[0]
                        table._bindings[top] = top
            elif isinstance(node, ast.ImportFrom):
                module = resolve_relative_module(node.module, node.level, package)
                if module is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table._bindings[alias.asname or alias.name] = f"{module}.{alias.name}"
        # Second pass: straight aliases of an import chain
        # (``nr = np.random``) extend the table; any other assignment to
        # a tracked name marks it rebound.
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                resolved = table.resolve(value) if value is not None else None
                if resolved is not None:
                    aliases.setdefault(target.id, resolved)
                else:
                    rebound.add(target.id)
        for name, resolved in aliases.items():
            if name not in rebound:
                table._bindings.setdefault(name, resolved)
        # A name that is imported *and* rebound to something that is not
        # an import chain is ambiguous; drop it rather than guess.
        for name in rebound:
            table._bindings.pop(name, None)
        return table

    def resolve(self, node: ast.expr | None) -> str | None:
        """Absolute dotted path for an attribute/name chain, if importable."""
        if node is None:
            return None
        chain = dotted_chain(node)
        if chain is None:
            return None
        return self.resolve_dotted(chain)

    def resolve_dotted(self, chain: str) -> str | None:
        """Resolve a pre-stringified chain through the binding table."""
        head, _, rest = chain.partition(".")
        base = self._bindings.get(head)
        if base is None:
            return None
        return f"{base}.{rest}" if rest else base

    def bound_names(self) -> frozenset[str]:
        return frozenset(self._bindings)
