"""SARIF 2.1.0 export for lint findings.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning, VS Code SARIF viewers and most CI dashboards ingest.
This exporter emits one ``run`` whose ``tool.driver`` carries the full
rule catalogue (so viewers can show rule help without the repo checked
out) and one ``result`` per finding with a ``physicalLocation``.

The mapping is intentionally 1:1 with the JSON format: the same
findings, the same count, just re-shaped — ``to_sarif`` never filters.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.lint.core import Finding, Severity, all_rules

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TOOL_NAME = "milback-lint"
_TOOL_URI = "https://example.invalid/milback/docs/STATIC_ANALYSIS.md"

_LEVEL_OF = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_descriptor(rule_id: str, name: str, description: str) -> dict[str, object]:
    return {
        "id": rule_id,
        "name": name,
        "shortDescription": {"text": name},
        "fullDescription": {"text": description},
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding: Finding) -> dict[str, object]:
    return {
        "ruleId": finding.rule_id,
        "level": _LEVEL_OF.get(finding.severity, "error"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                }
            }
        ],
    }


def to_sarif(findings: Sequence[Finding]) -> dict[str, object]:
    """Build the SARIF 2.1.0 log object for ``findings``.

    ``runs[0].results`` has exactly ``len(findings)`` entries — the
    count round-trips with the text and JSON formats by construction.
    """
    rules = [
        _rule_descriptor(cls.rule_id, cls.name, cls.description)
        for cls in all_rules()
    ]
    rules.append(
        _rule_descriptor(
            "ML000", "parse-error", "The engine could not parse this module."
        )
    )
    rules.sort(key=lambda descriptor: descriptor["id"])  # type: ignore[arg-type,return-value]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": [_result(finding) for finding in findings],
            }
        ],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    """Serialize :func:`to_sarif` output as stable, diff-friendly JSON."""
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True)
