"""ML010 — fault injection only through the :mod:`repro.faults` API.

The fault subsystem's contract is that the clean pipeline is bitwise
untouched unless a plan is active, every corruption draws from the
plan's own RNG stream, and every injection is tallied into
``faults.injected{type=...}``.  Code that imports the package's
internals (``repro.faults.spec`` / ``plan`` / ``injectors``) to corrupt
arrays ad hoc — say, inside ``sim/`` or ``hardware/`` — sidesteps all
three: determinism, the no-op fast path, and the obs ledger.  The fix
is to go through the public surface (``from repro import faults``, or
``repro.faults.campaign`` for sweeps); the implementation itself lives
under ``repro/faults/`` where this rule does not apply, and anything
else can justify itself with ``# milback: disable=ML010``.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from repro.lint.core import Finding, ModuleContext, Rule, register

__all__ = ["FaultApiRule", "RESTRICTED_SUBMODULES"]  # milback: disable=ML014 — documented rule knobs

#: Internal submodules of ``repro.faults`` reserved for the package itself.
#: ``campaign`` is deliberately absent: it is orchestration, not
#: corruption machinery, and the CLI drives it directly.
RESTRICTED_SUBMODULES: frozenset[str] = frozenset({"spec", "plan", "injectors"})


def _is_faults_module(path: str) -> bool:
    """True for files inside the ``repro/faults/`` package itself."""
    parts = PurePath(path).parts
    for i in range(len(parts) - 1):
        if parts[i] == "repro" and parts[i + 1] == "faults":
            return True
    return False


def _restricted(module_name: str | None) -> str | None:
    """The offending internal module, or None when the import is fine."""
    if not module_name:
        return None
    parts = module_name.split(".")
    if (
        len(parts) >= 3
        and parts[0] == "repro"
        and parts[1] == "faults"
        and parts[2] in RESTRICTED_SUBMODULES
    ):
        return f"repro.faults.{parts[2]}"
    return None


@register
class FaultApiRule(Rule):
    rule_id = "ML010"
    name = "faults-via-public-api"
    description = (
        "repro.faults internals (spec/plan/injectors) may only be imported "
        "inside repro/faults/; everything else uses the repro.faults public "
        "API so the no-op fast path, RNG discipline and injection ledger "
        "are preserved."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if _is_faults_module(module.path):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    offender = _restricted(alias.name)
                    if offender is not None:
                        yield module.finding(
                            self,
                            node,
                            f"direct import of {offender}; inject faults "
                            "through the repro.faults public API",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level > 0:
                    # Relative imports cannot leave the current package,
                    # which this rule already exempts.
                    continue
                offender = _restricted(node.module)
                if offender is not None:
                    yield module.finding(
                        self,
                        node,
                        f"direct import from {offender}; inject faults "
                        "through the repro.faults public API",
                    )
                elif node.module == "repro.faults":
                    for alias in node.names:
                        if alias.name in RESTRICTED_SUBMODULES:
                            yield module.finding(
                                self,
                                node,
                                f"import of repro.faults.{alias.name}; inject "
                                "faults through the repro.faults public API",
                            )
