"""ML014 — every ``__all__`` export should have a consumer.

``__all__`` is this repo's public-API declaration: docs, ``import *``
and the re-export hubs in package ``__init__`` modules all follow it.
An entry nobody imports is either dead code or an API promise nobody
asked for — both rot.  This rule cross-references every exported name
against every other module's imports and attribute accesses (including
``tests/``, ``benchmarks/`` and ``examples/`` next to the catalogue
root, which are consumers even though they are not linted).

Re-export hubs are handled by following the chain to the origin: a
package export like ``repro.sim.MilBackSimulator`` is alive when anyone
consumes the symbol *at any level* — ``from repro.sim import
MilBackSimulator`` or ``from repro.sim.engine import MilBackSimulator``
both count, while the hub's own re-import of the origin does not.

Deliberate but currently-unconsumed API surface can suppress per line
(``"name",  # milback: disable=ML014``) or per file
(``# milback: disable-file=ML014``).  Findings are warnings: a dead
export is a smell to review, not an outage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.core import Finding, ProjectRule, Severity, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.project import ModuleSummary, ProjectContext

__all__ = ["DeadExportRule"]


def _export_used(
    project: "ProjectContext", summary: "ModuleSummary", name: str
) -> bool:
    """True when the export (or the symbol it re-exports) has a consumer.

    Walks the re-export chain: if ``summary`` binds ``name`` via ``from
    origin import name``, uses of ``origin.name`` also keep the export
    alive.  Paths on the chain itself are excluded, so one hub
    re-importing from another never counts as consumption.
    """
    exclude: set[str] = set()
    seen: set[tuple[str, str]] = set()
    stack: list[tuple["ModuleSummary", str]] = [(summary, name)]
    while stack:
        current, symbol = stack.pop()
        if current.module is None or (current.module, symbol) in seen:
            continue
        seen.add((current.module, symbol))
        exclude.add(current.path)
        if project.symbol_used(current.module, symbol, exclude_paths=exclude):
            return True
        for record in current.imports:
            if record.name is None or record.bound_name != symbol:
                continue
            origin = project.by_module.get(record.module)
            if origin is not None:
                stack.append((origin, record.name))
            # ``from pkg import submodule`` re-exports a whole module;
            # any import of that module keeps the binding alive.
            target = project.by_module.get(f"{record.module}.{record.name}")
            if target is not None and project.symbol_used(
                record.module, record.name, exclude_paths=exclude
            ):
                return True
    return False


@register
class DeadExportRule(ProjectRule):
    rule_id = "ML014"
    name = "dead-exports"
    description = (
        "Symbols listed in __all__ must be imported or referenced from "
        "at least one other module (tests/benchmarks/examples count); "
        "suppress deliberate API surface with a pragma."
    )
    severity = Severity.WARNING

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        # A single-module "project" (e.g. linting one scratch file) has
        # no usage universe to judge against — stay silent.
        if len(project.summaries) + len(project.aux) < 2:
            return
        for summary in project.summaries:
            if summary.module is None:
                continue
            for name, lineno in summary.exports:
                if _export_used(project, summary, name):
                    continue
                yield Finding(
                    path=summary.path,
                    line=lineno,
                    col=1,
                    rule_id=self.rule_id,
                    message=(
                        f"dead export: {summary.module}.{name} is in __all__ "
                        "but never imported or referenced elsewhere; remove "
                        "it or suppress with a pragma if it is deliberate "
                        "API surface"
                    ),
                    severity=self.severity,
                )
