"""ML013 — the obs catalogue in ``docs/OBSERVABILITY.md`` must not rot.

``docs/OBSERVABILITY.md`` carries the authoritative table of every
metric and span name the system emits.  This rule makes the table a
checked contract in both directions:

* every literal name handed to a :mod:`repro.obs` registry call in the
  project (and in ``benchmarks/``, which feeds ``BENCH_obs.json``) must
  match a catalogue row;
* every catalogue row must still be emitted somewhere — by a literal
  name or by an f-string whose constant skeleton matches the row.

Catalogue rows may use ``<placeholder>`` segments (``engine.<burst>.trials``)
which match any single value, ``{a,b}`` alternation
(``…synthesis_{reference,batched}_s``), leading-dot continuations of the
previous name in the same cell (``cache.hits`` / ``.misses``), and label
annotations (``{experiment=…}``) which are ignored.  F-string emissions
in code are reduced to the same wildcard form, so a dynamic name like
``f"span.{name}.duration_s"`` satisfies the ``span.<name>.duration_s``
row.  Names built entirely at runtime (pure variables) cannot be
checked and are skipped.
"""

from __future__ import annotations

import re
from fnmatch import fnmatchcase
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.lint.core import Finding, ProjectRule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.project import ProjectContext

__all__ = ["ObsCatalogueRule", "parse_catalogue"]

_CODE_SPAN_RE = re.compile(r"`([^`]+)`")
_LABEL_RE = re.compile(r"\{[^{}]*=[^{}]*\}")
_ALTERNATION_RE = re.compile(r"\{([^{}=]+,[^{}=]+)\}")
_PLACEHOLDER_RE = re.compile(r"<[^<>]*>")
_SEPARATOR_ROW_RE = re.compile(r"^[\s|:-]+$")


def _expand_alternation(name: str) -> list[str]:
    match = _ALTERNATION_RE.search(name)
    if match is None:
        return [name]
    head, tail = name[: match.start()], name[match.end():]
    out: list[str] = []
    for option in match.group(1).split(","):
        out.extend(_expand_alternation(head + option.strip() + tail))
    return out


def _first_cell(row: str) -> str:
    """The first cell of a markdown table row, honouring ``\\|`` escapes."""
    cells = re.split(r"(?<!\\)\|", row)
    for cell in cells:
        if cell.strip():
            return cell
    return ""


def parse_catalogue(text: str) -> list[tuple[str, int]]:
    """Extract ``(name-pattern, line)`` rows from catalogue tables.

    Patterns use shell-style ``*`` wildcards for ``<placeholder>``
    segments; label annotations are stripped; alternations expand into
    one pattern each.
    """
    patterns: list[tuple[str, int]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped.startswith("|") or _SEPARATOR_ROW_RE.match(stripped):
            continue
        cell = _first_cell(stripped.strip("|"))
        previous: str | None = None
        for span in _CODE_SPAN_RE.findall(cell):
            raw = _LABEL_RE.sub("", span.replace("\\|", "|")).strip()
            if not raw:
                continue
            for candidate in _expand_alternation(raw):
                name = _PLACEHOLDER_RE.sub("*", candidate).strip()
                if name.startswith(".") and previous is not None:
                    tail = name.lstrip(".").split(".")
                    base = previous.split(".")
                    name = ".".join(base[: max(len(base) - len(tail), 0)] + tail)
                if not name.strip("*."):
                    continue
                patterns.append((name, lineno))
                previous = name
    return patterns


def _overlaps(emitted: str, catalogued: str) -> bool:
    """Can the emitted (possibly wildcarded) name satisfy the row?"""
    if "*" not in emitted:
        return fnmatchcase(emitted, catalogued)
    if "*" not in catalogued:
        return fnmatchcase(catalogued, emitted)
    return emitted == catalogued


@register
class ObsCatalogueRule(ProjectRule):
    rule_id = "ML013"
    name = "obs-catalogue-drift"
    description = (
        "Every metric/span name passed to repro.obs must appear in the "
        "docs/OBSERVABILITY.md catalogue, and every catalogue row must "
        "still be emitted somewhere."
    )

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        if project.catalogue_path is None:
            return
        catalogue_file = Path(project.catalogue_path)
        if not catalogue_file.is_file():
            return
        catalogue = parse_catalogue(catalogue_file.read_text(encoding="utf-8"))
        catalogue_patterns = [pattern for pattern, _ in catalogue]
        emissions = project.metric_calls()

        for summary, call in emissions:
            if not call.literal:
                continue
            if not any(fnmatchcase(call.pattern, pattern) for pattern in catalogue_patterns):
                yield Finding(
                    path=summary.path,
                    line=call.lineno,
                    col=call.col + 1,
                    rule_id=self.rule_id,
                    message=(
                        f"obs name {call.pattern!r} is not in the "
                        "docs/OBSERVABILITY.md catalogue; add a row (or fix "
                        "the name)"
                    ),
                    severity=self.severity,
                )

        emitted = [call.pattern for _, call in emissions]
        for pattern, lineno in catalogue:
            if not any(_overlaps(name, pattern) for name in emitted):
                yield Finding(
                    path=str(catalogue_file),
                    line=lineno,
                    col=1,
                    rule_id=self.rule_id,
                    message=(
                        f"catalogue row {pattern!r} is no longer emitted "
                        "anywhere; delete the row or restore the metric"
                    ),
                    severity=self.severity,
                )
