"""ML006 — public modules declare an accurate ``__all__``.

``__all__`` is the module's public contract: it pins what ``import *``
exposes, what the docs index, and — for this codebase — what the next
refactor must keep working.  The rule requires every public module
(filename not starting with ``_``, plus package ``__init__``) to:

1. define ``__all__`` as a literal list/tuple of strings,
2. list only names actually bound at module top level, and
3. list every public top-level ``def`` / ``class``.

Module-level constants may be exported but are not required to be (a
module like ``constants.py`` opts in by listing them).
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from repro.lint.core import Finding, ModuleContext, Rule, register

__all__ = ["DunderAllRule", "is_public_module"]  # milback: disable=ML014 — documented rule knob


def is_public_module(path: str) -> bool:
    """Public = importable API surface: ``foo.py`` or ``__init__.py``."""
    stem = PurePath(path).stem
    return not stem.startswith("_") or stem == "__init__"


def _top_level_bindings(tree: ast.Module) -> set[str]:
    bound: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
                elif isinstance(target, ast.Tuple):
                    bound.update(
                        elt.id for elt in target.elts if isinstance(elt, ast.Name)
                    )
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # typing/availability guards: count bindings one level down
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    bound.add(sub.name)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name != "*":
                            bound.add(alias.asname or alias.name.split(".")[0])
    return bound


@register
class DunderAllRule(Rule):
    rule_id = "ML006"
    name = "accurate-dunder-all"
    description = (
        "Every public module must declare __all__ listing exactly its "
        "public defs (and any exported constants)."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not is_public_module(module.path):
            return

        all_node: ast.expr | None = None
        all_lineno = 1
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                names = [t.id for t in node.targets if isinstance(t, ast.Name)]
                if "__all__" in names:
                    all_node, all_lineno = node.value, node.lineno
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == "__all__"
                and node.value is not None
            ):
                all_node, all_lineno = node.value, node.lineno

        if all_node is None:
            yield module.finding(
                self, None, "public module does not declare __all__", line=1, col=0
            )
            return

        if not isinstance(all_node, (ast.List, ast.Tuple)) or not all(
            isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            for elt in all_node.elts
        ):
            yield module.finding(
                self,
                all_node,
                "__all__ must be a literal list/tuple of string names",
            )
            return

        exported = [elt.value for elt in all_node.elts if isinstance(elt, ast.Constant)]
        bound = _top_level_bindings(module.tree)

        for name in exported:
            if name not in bound:
                yield module.finding(
                    self,
                    all_node,
                    f"__all__ lists '{name}' which is not defined in the module",
                    line=all_lineno,
                )

        exported_set = set(exported)
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if not node.name.startswith("_") and node.name not in exported_set:
                    kind = "class" if isinstance(node, ast.ClassDef) else "function"
                    yield module.finding(
                        self,
                        node,
                        f"public {kind} '{node.name}' is missing from __all__",
                    )
