"""Built-in MilBack lint rules.

Importing this package registers every rule with the engine registry in
:mod:`repro.lint.core`.  Each rule lives in its own module so a rule can
be read, tested, and (when needed) suppressed in isolation.
"""

from __future__ import annotations

from repro.lint.rules.ml001_rng import LegacyNumpyRandomRule
from repro.lint.rules.ml002_units import UnitSuffixRule
from repro.lint.rules.ml003_float_eq import FloatEqualityRule
from repro.lint.rules.ml004_errors import ErrorHierarchyRule
from repro.lint.rules.ml005_mutable_defaults import MutableDefaultRule
from repro.lint.rules.ml006_all import DunderAllRule
from repro.lint.rules.ml007_print import BarePrintRule
from repro.lint.rules.ml008_parallel import ConcurrencyImportRule
from repro.lint.rules.ml009_fstrings import RaiseFStringRule
from repro.lint.rules.ml010_faults import FaultApiRule
from repro.lint.rules.ml011_layers import ArchitectureLayerRule
from repro.lint.rules.ml012_determinism import DeterminismRule
from repro.lint.rules.ml013_obs_catalogue import ObsCatalogueRule
from repro.lint.rules.ml014_dead_exports import DeadExportRule

# milback: disable-file=ML014 — rule classes are consumed via the registry, not imports
__all__ = [
    "LegacyNumpyRandomRule",
    "UnitSuffixRule",
    "FloatEqualityRule",
    "ErrorHierarchyRule",
    "MutableDefaultRule",
    "DunderAllRule",
    "BarePrintRule",
    "ConcurrencyImportRule",
    "RaiseFStringRule",
    "FaultApiRule",
    "ArchitectureLayerRule",
    "DeterminismRule",
    "ObsCatalogueRule",
    "DeadExportRule",
]
