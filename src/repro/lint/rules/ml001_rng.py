"""ML001 — no legacy ``np.random`` draws.

A Monte-Carlo link simulation is only reproducible when every random
draw flows from a seed the caller controls.  The legacy
``np.random.<fn>`` functions (and ``RandomState``) share hidden global
state, so one stray call silently decorrelates every experiment in the
process.  The fix is the pattern ``src/repro/experiments/`` already
uses: build generators with ``np.random.default_rng(seed)`` (or
``repro.utils.rng.spawn_rngs``) and pass them down.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ModuleContext, Rule, register

__all__ = ["LegacyNumpyRandomRule", "LEGACY_FUNCTIONS"]

#: Module-level functions of the legacy global-state RandomState API.
LEGACY_FUNCTIONS: frozenset[str] = frozenset(
    {
        "seed", "get_state", "set_state", "rand", "randn", "randint",
        "random_integers", "random_sample", "random", "ranf", "sample",
        "choice", "bytes", "shuffle", "permutation", "beta", "binomial",
        "chisquare", "dirichlet", "exponential", "f", "gamma", "geometric",
        "gumbel", "hypergeometric", "laplace", "logistic", "lognormal",
        "logseries", "multinomial", "multivariate_normal",
        "negative_binomial", "noncentral_chisquare", "noncentral_f",
        "normal", "pareto", "poisson", "power", "rayleigh",
        "standard_cauchy", "standard_exponential", "standard_gamma",
        "standard_normal", "standard_t", "triangular", "uniform",
        "vonmises", "wald", "weibull", "zipf", "RandomState",
    }
)


def _dotted(node: ast.expr) -> str | None:
    """``np.random.rand`` → ``"np.random.rand"`` (None when not a chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class LegacyNumpyRandomRule(Rule):
    rule_id = "ML001"
    name = "no-legacy-numpy-random"
    description = (
        "Random draws must use a seeded np.random.default_rng() / passed-in "
        "Generator, never the global-state legacy np.random functions."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        numpy_aliases: set[str] = set()
        random_aliases: set[str] = set()

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            random_aliases.add(alias.asname)
                        else:
                            numpy_aliases.add("numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            random_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name in LEGACY_FUNCTIONS:
                            yield module.finding(
                                self,
                                node,
                                f"import of legacy numpy.random.{alias.name}; "
                                "use np.random.default_rng() or a passed-in Generator",
                            )

        legacy_prefixes = {f"{alias}.random" for alias in numpy_aliases}
        legacy_prefixes |= random_aliases

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            dotted = _dotted(node)
            if dotted is None:
                continue
            prefix, _, attr = dotted.rpartition(".")
            if prefix in legacy_prefixes and attr in LEGACY_FUNCTIONS:
                yield module.finding(
                    self,
                    node,
                    f"legacy global-state call {dotted}; use a seeded "
                    "np.random.default_rng() / passed-in Generator instead",
                )
