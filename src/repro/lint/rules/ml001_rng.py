"""ML001 — no legacy ``np.random`` draws.

A Monte-Carlo link simulation is only reproducible when every random
draw flows from a seed the caller controls.  The legacy
``np.random.<fn>`` functions (and ``RandomState``) share hidden global
state, so one stray call silently decorrelates every experiment in the
process.  The fix is the pattern ``src/repro/experiments/`` already
uses: build generators with ``np.random.default_rng(seed)`` (or
``repro.utils.rng.spawn_rngs``) and pass them down.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ModuleContext, Rule, register
from repro.lint.imports import ImportTable

__all__ = ["LegacyNumpyRandomRule", "LEGACY_FUNCTIONS"]  # milback: disable=ML014 — documented rule knob

#: Module-level functions of the legacy global-state RandomState API.
LEGACY_FUNCTIONS: frozenset[str] = frozenset(
    {
        "seed", "get_state", "set_state", "rand", "randn", "randint",
        "random_integers", "random_sample", "random", "ranf", "sample",
        "choice", "bytes", "shuffle", "permutation", "beta", "binomial",
        "chisquare", "dirichlet", "exponential", "f", "gamma", "geometric",
        "gumbel", "hypergeometric", "laplace", "logistic", "lognormal",
        "logseries", "multinomial", "multivariate_normal",
        "negative_binomial", "noncentral_chisquare", "noncentral_f",
        "normal", "pareto", "poisson", "power", "rayleigh",
        "standard_cauchy", "standard_exponential", "standard_gamma",
        "standard_normal", "standard_t", "triangular", "uniform",
        "vonmises", "wald", "weibull", "zipf", "RandomState",
    }
)


def _is_legacy(resolved: str) -> bool:
    """True when an absolute chain lands on a legacy global-state name.

    Matches ``numpy.random.<fn>`` and deeper spellings such as
    ``numpy.random.mtrand.<fn>`` — the resolver has already absolutised
    aliases (``import numpy.random as npr``, ``from numpy import
    random``, ``nr = np.random``), so only the canonical prefix matters.
    """
    parts = resolved.split(".")
    return (
        len(parts) >= 3
        and parts[0] == "numpy"
        and parts[1] == "random"
        and parts[-1] in LEGACY_FUNCTIONS
    )


@register
class LegacyNumpyRandomRule(Rule):
    rule_id = "ML001"
    name = "no-legacy-numpy-random"
    description = (
        "Random draws must use a seeded np.random.default_rng() / passed-in "
        "Generator, never the global-state legacy np.random functions."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        table = ImportTable.from_tree(module.tree)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name in LEGACY_FUNCTIONS:
                        yield module.finding(
                            self,
                            node,
                            f"import of legacy numpy.random.{alias.name}; "
                            "use np.random.default_rng() or a passed-in Generator",
                        )

        # Attribute chains are resolved through the import table, so any
        # aliased spelling of numpy.random is seen for what it is.
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            resolved = table.resolve(node)
            if resolved is not None and _is_legacy(resolved):
                yield module.finding(
                    self,
                    node,
                    f"legacy global-state call {resolved}; use a seeded "
                    "np.random.default_rng() / passed-in Generator instead",
                )
