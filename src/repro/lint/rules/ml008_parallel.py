"""ML008 — process pools go through :mod:`repro.parallel`.

``parallel_map`` owns the repo's determinism contract: fork-inherited
closures, pre-spawned RNG streams shipped to workers, and worker obs
deltas merged back into the parent registry.  A module that imports
``multiprocessing`` or ``concurrent.futures`` directly sidesteps all
three — its results can drift from the serial run and its metrics and
spans silently vanish.  The fix is to call
:func:`repro.parallel.parallel_map`; genuinely low-level code (the
executor itself) lives under ``repro/parallel/`` where this rule does
not apply, and anything else can justify itself with
``# milback: disable=ML008``.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from repro.lint.core import Finding, ModuleContext, Rule, register

__all__ = ["ConcurrencyImportRule", "RESTRICTED_MODULES"]  # milback: disable=ML014 — documented rule knobs

#: Top-level modules whose import is reserved for ``repro/parallel/``.
RESTRICTED_MODULES: frozenset[str] = frozenset({"multiprocessing", "concurrent"})


def _is_executor_module(path: str) -> bool:
    """True for files inside the ``repro/parallel/`` package itself."""
    parts = PurePath(path).parts
    for i in range(len(parts) - 1):
        if parts[i] == "repro" and parts[i + 1] == "parallel":
            return True
    return False


def _restricted(module_name: str | None) -> str | None:
    """The offending top-level module, or None when the import is fine.

    ``concurrent`` only matters for its ``futures`` subpackage —
    ``concurrent.futures``, ``concurrent.futures.process`` and friends
    all resolve to the same pool machinery.
    """
    if not module_name:
        return None
    top = module_name.split(".", 1)[0]
    if top == "multiprocessing":
        return "multiprocessing"
    if top == "concurrent":
        return "concurrent.futures"
    return None


@register
class ConcurrencyImportRule(Rule):
    rule_id = "ML008"
    name = "parallel-via-executor"
    description = (
        "multiprocessing / concurrent.futures may only be imported inside "
        "repro/parallel/; everything else uses repro.parallel.parallel_map "
        "so determinism and obs merging are preserved."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if _is_executor_module(module.path):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    offender = _restricted(alias.name)
                    if offender is not None:
                        yield module.finding(
                            self,
                            node,
                            f"direct import of {offender}; use "
                            "repro.parallel.parallel_map (or move the code "
                            "under repro/parallel/)",
                        )
            elif isinstance(node, ast.ImportFrom):
                # Relative imports (level > 0) cannot reach the stdlib.
                offender = _restricted(node.module) if node.level == 0 else None
                if offender is not None:
                    yield module.finding(
                        self,
                        node,
                        f"direct import from {offender}; use "
                        "repro.parallel.parallel_map (or move the code "
                        "under repro/parallel/)",
                    )
