"""ML009 — no placeholder-free f-strings in ``raise`` statements.

An ``f"..."`` with no ``{placeholder}`` is a plain string wearing an
``f`` prefix. In a ``raise`` it is worse than noise: it advertises that
the message interpolates runtime context (a value, a limit, a file) when
it interpolates nothing, and it usually marks the spot where someone
*meant* to include the offending value and forgot. Either add the
placeholder the message promises or drop the prefix.

The rule is scoped to ``raise`` statements — error messages are where
the missing-context cost is paid — rather than policing every string in
the tree.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ModuleContext, Rule, register

__all__ = ["RaiseFStringRule"]


@register
class RaiseFStringRule(Rule):
    rule_id = "ML009"
    name = "no-placeholder-free-raise-fstring"
    description = (
        "f-string in a raise statement has no {placeholder}; add the runtime "
        "context the message implies or drop the 'f' prefix."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            # A format spec like the ".3f" in f"{x:.3f}" parses as its own
            # placeholder-free JoinedStr — not an f-string the author wrote.
            spec_ids = {
                id(part.format_spec)
                for part in ast.walk(node.exc)
                if isinstance(part, ast.FormattedValue)
                and part.format_spec is not None
            }
            for joined in ast.walk(node.exc):
                if (
                    isinstance(joined, ast.JoinedStr)
                    and id(joined) not in spec_ids
                    and not any(
                        isinstance(part, ast.FormattedValue)
                        for part in joined.values
                    )
                ):
                    yield module.finding(
                        self,
                        joined,
                        "placeholder-free f-string in raise; interpolate the "
                        "missing context or remove the 'f' prefix",
                    )
