"""ML007 — no bare ``print()`` in library code.

The repo's runtime signal is :mod:`repro.obs`: metrics, spans, and the
exporters. A stray ``print()`` deep in the simulator bypasses all of it
— it cannot be redirected, filtered, or captured in a trace artifact,
and it corrupts the stdout of every consumer that parses experiment
output. Library code should return strings (the ``main() -> str``
experiment convention), record events via ``repro.obs``, or raise.

Deliberate CLI/report surfaces (the ``repro``/``repro.lint``/``obs.check``
command-line front ends, ``if __name__ == "__main__":`` script blocks)
suppress the rule explicitly with ``# milback: disable=ML007`` plus a
justification — the pragma *is* the declaration that stdout is that
line's intended interface.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ModuleContext, Rule, register

__all__ = ["BarePrintRule"]


@register
class BarePrintRule(Rule):
    rule_id = "ML007"
    name = "no-bare-print"
    description = (
        "Library code must not call print(); return strings, use repro.obs, "
        "or mark a deliberate CLI surface with '# milback: disable=ML007'."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        shadowed = _module_level_rebindings(module.tree)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
                and "print" not in shadowed
            ):
                yield module.finding(
                    self,
                    node,
                    "bare print() in library code; return a string, record via "
                    "repro.obs, or suppress on a deliberate CLI surface",
                )


def _module_level_rebindings(tree: ast.Module) -> frozenset[str]:
    """Names assigned/imported at module top level (a rebound ``print`` is
    no longer the builtin, so calling it is not ML007's business)."""
    bound: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(node.name)
    return frozenset(bound)
