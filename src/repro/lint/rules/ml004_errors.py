"""ML004 — raise the MilBack error hierarchy; never catch blindly.

``src/repro/errors.py`` defines a subsystem-keyed exception hierarchy
under :class:`~repro.errors.MilBackError` precisely so callers can
discriminate failures (a ``DecodingError`` at 9 m is expected physics; a
``ConfigurationError`` is a bug in the caller).  Raising builtin
exceptions bypasses that contract, and ``except Exception`` /
bare ``except`` swallows everything including the bugs.

Allowed: re-raise (``raise`` with no operand), raising a name that is
not a Python builtin exception (assumed to be a domain error), and
``NotImplementedError`` (the structural marker for abstract methods,
not a runtime failure).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ModuleContext, Rule, register

__all__ = ["ErrorHierarchyRule", "FORBIDDEN_RAISES", "BROAD_HANDLERS"]  # milback: disable=ML014 — documented rule knobs

#: Builtin exceptions that must not be raised directly in src/repro.
FORBIDDEN_RAISES: frozenset[str] = frozenset(
    {
        "Exception", "BaseException", "ValueError", "TypeError", "KeyError",
        "IndexError", "LookupError", "RuntimeError", "ArithmeticError",
        "ZeroDivisionError", "OverflowError", "FloatingPointError",
        "AttributeError", "NameError", "OSError", "IOError", "EOFError",
        "BufferError", "StopIteration", "StopAsyncIteration",
        "AssertionError", "SystemError", "ReferenceError", "MemoryError",
        "UnicodeError", "UnicodeDecodeError", "UnicodeEncodeError",
    }
)

#: Exception types too broad for an ``except`` clause.
BROAD_HANDLERS: frozenset[str] = frozenset({"Exception", "BaseException"})


def _exception_name(node: ast.expr) -> str | None:
    """The class name in ``raise X(...)`` / ``raise X`` / ``except X``."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class ErrorHierarchyRule(Rule):
    rule_id = "ML004"
    name = "milback-error-hierarchy"
    description = (
        "Raises must use the MilBackError hierarchy from repro.errors; "
        "no bare except or except Exception."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Raise):
                if node.exc is None:
                    continue  # bare re-raise inside a handler
                name = _exception_name(node.exc)
                if name in FORBIDDEN_RAISES:
                    yield module.finding(
                        self,
                        node,
                        f"raise {name}: use a MilBackError subclass from "
                        "repro.errors so callers can discriminate failures",
                    )
            elif isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield module.finding(
                        self,
                        node,
                        "bare 'except:' swallows every failure including "
                        "bugs; catch specific MilBackError subclasses",
                    )
                    continue
                caught = (
                    node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
                )
                for exc in caught:
                    name = _exception_name(exc)
                    if name in BROAD_HANDLERS:
                        yield module.finding(
                            self,
                            exc,
                            f"'except {name}' is too broad; catch specific "
                            "MilBackError subclasses",
                        )
