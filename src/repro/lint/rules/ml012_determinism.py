"""ML012 — no hidden entropy or wall-clock reads in library code.

The repo's bitwise-replay guarantees (serial-vs-parallel equality,
kernel-mode equality, fault no-op invariants) hold only while every
source of nondeterminism is an explicit input: RNG draws flow from
seeded ``numpy.random.Generator`` streams (ML001 polices the numpy
side), and simulated time comes from the protocol's own clock.  One
stray ``random.random()``, ``time.time()``, ``datetime.now()`` or
``os.urandom()`` in library code silently breaks all three guarantees.

Names are resolved through the module's import table, so aliased
spellings (``from random import choice``, ``import time as clock``,
``from datetime import datetime``) are seen for what they are, while
``rng.random()`` on a passed-in ``Generator`` — a *method*, not the
stdlib module — is naturally allowed.

Scope: files under ``repro/`` except ``repro/utils/rng.py`` (the one
place fresh entropy is deliberately allowed) and anything under a
``tests``/``benchmarks``/``examples`` directory.  Monotonic timing
(``time.perf_counter``, ``time.monotonic``) is fine — it never feeds
physics, only observability.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from repro.lint.core import Finding, ModuleContext, Rule, register
from repro.lint.imports import ImportTable

__all__ = ["DeterminismRule", "FORBIDDEN_CALLS", "STDLIB_RANDOM_MODULE"]  # milback: disable=ML014 — documented rule knobs

#: Absolute dotted names whose use is nondeterministic by construction.
FORBIDDEN_CALLS: dict[str, str] = {
    "time.time": "wall-clock read; use the protocol's simulated clock or time.perf_counter for observability",
    "time.time_ns": "wall-clock read; use the protocol's simulated clock or time.perf_counter for observability",
    "os.urandom": "OS entropy; draw from a seeded numpy Generator via repro.utils.rng",
    "datetime.datetime.now": "wall-clock read; pass timestamps in explicitly",
    "datetime.datetime.utcnow": "wall-clock read; pass timestamps in explicitly",
    "datetime.datetime.today": "wall-clock read; pass timestamps in explicitly",
    "datetime.date.today": "wall-clock read; pass timestamps in explicitly",
}

#: The stdlib global-state RNG module: every attribute is off-limits.
STDLIB_RANDOM_MODULE = "random"

#: Paths exempt from the rule (relative suffix under the repro tree).
_EXEMPT_SUFFIXES = (("repro", "utils", "rng.py"),)
_EXEMPT_DIRS = frozenset({"tests", "benchmarks", "examples"})


def _is_library_path(path: str) -> bool:
    parts = PurePath(path).parts
    if "repro" not in parts:
        return False
    if _EXEMPT_DIRS.intersection(parts):
        return False
    for suffix in _EXEMPT_SUFFIXES:
        if parts[-len(suffix):] == suffix:
            return False
    return True


def _violation(resolved: str) -> str | None:
    """The reason ``resolved`` is forbidden, or None when it is fine."""
    reason = FORBIDDEN_CALLS.get(resolved)
    if reason is not None:
        return reason
    head, _, rest = resolved.partition(".")
    if head == STDLIB_RANDOM_MODULE and rest:
        return (
            "stdlib random global state; draw from a seeded numpy "
            "Generator via repro.utils.rng"
        )
    return None


class _ReferenceVisitor(ast.NodeVisitor):
    """Collect resolved name references without double-counting chains."""

    def __init__(self, table: ImportTable) -> None:
        self.table = table
        self.hits: list[tuple[str, ast.expr]] = []

    def visit_Attribute(self, node: ast.Attribute) -> None:
        resolved = self.table.resolve(node)
        if resolved is not None:
            if _violation(resolved) is not None:
                self.hits.append((resolved, node))
            return  # the full chain subsumes its sub-chains
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        resolved = self.table.resolve_dotted(node.id)
        if resolved is not None and resolved != node.id and _violation(resolved) is not None:
            self.hits.append((resolved, node))


@register
class DeterminismRule(Rule):
    rule_id = "ML012"
    name = "deterministic-library-code"
    description = (
        "Library code must not read hidden entropy or the wall clock: no "
        "stdlib random.*, time.time(), datetime.now()/today(), or "
        "os.urandom() outside repro/utils/rng.py and benchmarks."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not _is_library_path(module.path):
            return
        table = ImportTable.from_tree(module.tree)
        visitor = _ReferenceVisitor(table)
        visitor.visit(module.tree)
        for resolved, node in visitor.hits:
            yield module.finding(
                self,
                node,
                f"nondeterministic reference {resolved}: {_violation(resolved)}",
            )
