"""ML003 — no ``==`` / ``!=`` on float or complex signal values.

Exact equality on floats that came out of a signal chain (FFT bins,
BERs, beat frequencies) is either vacuously false or true only by
accident of rounding; both ways it makes experiments irreproducible
across BLAS builds.  Use ``np.isclose`` / ``math.isclose`` or an
explicit tolerance; for genuine sentinels (a count-derived 0.0) either
compare the underlying integer count or suppress with a justification.

The rule fires when one side of an ``==`` / ``!=`` is a float/complex
literal, or when either side carries a physical-unit suffix (those
names are floats by convention in this codebase).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ModuleContext, Rule, register
from repro.lint.units import infer_unit

__all__ = ["FloatEqualityRule"]


def _is_floatlike(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (float, complex))
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_floatlike(node.operand)
    return infer_unit(node) is not None


@register
class FloatEqualityRule(Rule):
    rule_id = "ML003"
    name = "no-float-equality"
    description = (
        "Float/complex signal values must not be compared with == / !=; "
        "use np.isclose or an explicit tolerance."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            comparators = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, comparators, comparators[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floatlike(left) or _is_floatlike(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield module.finding(
                        self,
                        left,
                        f"'{symbol}' on a float/complex quantity; use "
                        "np.isclose/math.isclose or compare an integer count",
                    )
