"""ML011 — architecture layering and import cycles.

The codebase is layered so the physics stays importable without the
protocol stack, and the protocol without the experiment harness:

    constants/errors/utils                      (0, foundations)
      -> phy/dsp                                (1, signal mathematics)
        -> hardware/antennas                    (2, device models)
          -> channel/sim/kernels                (3, propagation + engine)
            -> node/ap/protocol                 (4, endpoints + MAC)
              -> netsim                         (5, fleet-scale network sim)
                -> experiments/analysis/...     (6, harnesses)

A module may import its own layer and anything below; importing *up*
couples a foundation to its consumers and is reported unless the edge
is listed in ``repro/lint/layering_allowlist.txt`` with a justification.
Infrastructure packages (``obs``, ``parallel``, ``lint``, the CLI) are
deliberately outside the order — everything may use them.

Import cycles are always errors, allowlist or not: a cycle means there
is no order in which the modules can initialise without relying on
partially-populated namespaces.  Deferred (function-level) imports and
``TYPE_CHECKING`` guards do not create import-time edges and are
excluded from cycle detection; deferred imports still count for
layering, ``TYPE_CHECKING`` imports do not.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.lint.core import Finding, ProjectRule, Severity, register
from repro.lint.project import repro_component

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.project import ProjectContext

__all__ = ["ArchitectureLayerRule", "LAYERS", "UNCONSTRAINED", "load_allowlist"]

#: Declared layer order, bottom (0) to top.  A package may import its
#: own layer and below.
LAYERS: tuple[frozenset[str], ...] = (
    frozenset({"constants", "errors", "utils"}),
    frozenset({"phy", "dsp"}),
    frozenset({"hardware", "antennas"}),
    frozenset({"channel", "sim", "kernels"}),
    frozenset({"node", "ap", "protocol"}),
    frozenset({"netsim"}),
    frozenset(
        {
            "experiments",
            "analysis",
            "baselines",
            "tracking",
            "faults",
            "serialization",
            "datasets",
        }
    ),
)

#: Cross-cutting infrastructure outside the layer order (still subject
#: to cycle detection).
UNCONSTRAINED: frozenset[str] = frozenset({"obs", "parallel", "lint", "cli", "__main__"})

_LAYER_OF: dict[str, int] = {
    package: level for level, packages in enumerate(LAYERS) for package in packages
}

_ALLOWLIST_PATH = Path(__file__).resolve().parent.parent / "layering_allowlist.txt"

_ENTRY_RE = re.compile(r"^(?P<module>[\w.]+)\s*->\s*(?P<package>\w+)\s*(?:#.*)?$")


def load_allowlist(path: Path | None = None) -> dict[tuple[str, str], int]:
    """Parse the allowlist file into ``{(module, package): line}``."""
    target = path if path is not None else _ALLOWLIST_PATH
    entries: dict[tuple[str, str], int] = {}
    if not target.is_file():
        return entries
    for lineno, raw in enumerate(target.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _ENTRY_RE.match(line)
        if match is not None:
            entries[(match.group("module"), match.group("package"))] = lineno
    return entries


@register
class ArchitectureLayerRule(ProjectRule):
    rule_id = "ML011"
    name = "architecture-layering"
    description = (
        "Modules may only import their own layer or below "
        "(constants/errors/utils -> phy/dsp -> hardware/antennas -> "
        "channel/sim/kernels -> node/ap/protocol -> netsim -> "
        "experiments/...); "
        "upward edges need a layering_allowlist.txt entry, cycles are "
        "always errors."
    )

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        allowlist = load_allowlist()
        used_entries: set[tuple[str, str]] = set()

        for summary in project.summaries:
            if summary.module is None:
                continue
            src_component = repro_component(summary.module)
            src_layer = _LAYER_OF.get(src_component) if src_component else None
            if src_layer is None:
                continue  # unconstrained or outside repro
            for record in summary.imports:
                if record.type_checking:
                    continue
                target = project.resolve_import_target(record)
                dst_component = repro_component(target)
                if dst_component is None:
                    continue
                dst_layer = _LAYER_OF.get(dst_component)
                if dst_layer is None or dst_layer <= src_layer:
                    continue
                key = (summary.module, dst_component)
                if key in allowlist:
                    used_entries.add(key)
                    continue
                yield Finding(
                    path=summary.path,
                    line=record.lineno,
                    col=record.col + 1,
                    rule_id=self.rule_id,
                    message=(
                        f"layering violation: {summary.module} (layer {src_layer}, "
                        f"{src_component}) imports {target} (layer {dst_layer}, "
                        f"{dst_component}); import down the stack or add a "
                        "justified layering_allowlist.txt entry"
                    ),
                    severity=self.severity,
                )

        # Stale allowlist entries rot the exception list; report them as
        # warnings, but only when this run lints the tree the allowlist
        # belongs to (fixture trees may reuse real module names) and the
        # named module is part of the run.
        owns_allowlist = "repro.lint.rules.ml011_layers" in project.by_module
        for (module, package), lineno in sorted(allowlist.items()):
            if not owns_allowlist:
                break
            if module in project.by_module and (module, package) not in used_entries:
                yield Finding(
                    path=str(_ALLOWLIST_PATH),
                    line=lineno,
                    col=1,
                    rule_id=self.rule_id,
                    message=(
                        f"stale allowlist entry: {module} no longer imports "
                        f"upward into {package}; remove the exception"
                    ),
                    severity=Severity.WARNING,
                )

        for cycle in project.cycles():
            anchor = project.by_module[cycle[0]]
            line, col = 1, 1
            for record in anchor.imports:
                if record.deferred or record.type_checking:
                    continue
                if project.resolve_import_target(record) in cycle:
                    line, col = record.lineno, record.col + 1
                    break
            chain = " -> ".join(cycle + [cycle[0]])
            yield Finding(
                path=anchor.path,
                line=line,
                col=col,
                rule_id=self.rule_id,
                message=(
                    f"import cycle: {chain}; break the cycle with a deferred "
                    "import or by moving the shared piece down the stack"
                ),
                severity=self.severity,
            )
