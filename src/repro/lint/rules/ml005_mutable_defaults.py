"""ML005 — no mutable default arguments.

A mutable default (``def f(x, acc=[])``) is evaluated once at function
definition and then shared by every call — state leaks between
independent simulation runs, which is exactly the cross-trial coupling
a Monte-Carlo study must never have.  Use ``None`` and materialise the
default inside the function body.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ModuleContext, Rule, register

__all__ = ["MutableDefaultRule"]

#: Constructor names whose call results are mutable containers.
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "deque"})


def _is_mutable(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    return False


@register
class MutableDefaultRule(Rule):
    rule_id = "ML005"
    name = "no-mutable-default"
    description = "Default argument values must be immutable (use None instead)."

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield module.finding(
                        self,
                        default,
                        f"mutable default argument in '{label}'; default to "
                        "None and build the container inside the body",
                    )
