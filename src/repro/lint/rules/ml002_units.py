"""ML002 — physical quantities must carry unit suffixes.

GHz-vs-Hz chirp-slope mixups are the classic silent killer in FMCW
code: every term in the beat-frequency equation is "just a float".  The
codebase convention is that any name bound to a unit-bearing value ends
in its unit (``_hz``, ``_m``, ``_s``, ``_db``, ``_dbm``, ``_rad``,
``_deg``, ...).  This rule flags assignments where the right-hand side
provably carries a unit (see :mod:`repro.lint.units` for the inference
rules) but the target name does not.

Renaming to *any* recognised unit suffix satisfies the rule — the rule
checks that units are declared, not that conversions are correct (that
is what :mod:`repro.utils.units` helpers are for).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ModuleContext, Rule, register
from repro.lint.units import infer_unit, unit_of_name

__all__ = ["UnitSuffixRule"]


@register
class UnitSuffixRule(Rule):
    rule_id = "ML002"
    name = "unit-suffix-required"
    description = (
        "Names assigned from unit-bearing expressions must end in a unit "
        "suffix (_hz, _m, _s, _db, _dbm, _rad, _deg, ...)."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            unit = infer_unit(value)
            if unit is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue  # tuple unpacking / attributes: out of scope
                name = target.id
                if name.startswith("_"):
                    continue  # throwaway / private accumulator names
                if unit_of_name(name) is None:
                    yield module.finding(
                        self,
                        target,
                        f"'{name}' is assigned a value in {unit.replace('_', ' ')} "
                        f"but carries no unit suffix (e.g. '{name}_{unit}')",
                    )
