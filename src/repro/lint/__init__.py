"""repro.lint — domain-aware static analysis for the MilBack codebase.

The generic linters in the Python ecosystem cannot see MilBack's physics
conventions: that random draws must flow through seeded Generators, that
a name holding 26.5 GHz had better say so, or that comparing two noisy
signal floats with ``==`` is a reproducibility bug waiting to happen.
This package is an AST-based rule engine for exactly those conventions.

Run it with ``python -m repro.lint src`` or the ``milback-lint`` console
script.  Rules live in :mod:`repro.lint.rules` and register themselves
with the registry in :mod:`repro.lint.core`; suppress a finding on one
line with ``# milback: disable=ML00X`` or for a whole file with
``# milback: disable-file=ML00X`` near the top of the module.
"""

from __future__ import annotations

from repro.lint.core import (
    Finding,
    ModuleContext,
    ProjectRule,
    Rule,
    Severity,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    register,
)
from repro.lint.driver import LintReport, run_lint

__all__ = [
    "Finding",
    "LintReport",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register",
    "run_lint",
]

# Importing the rules package registers every built-in ML rule.
from repro.lint import rules as _rules  # noqa: E402  (registration side effect)

del _rules
