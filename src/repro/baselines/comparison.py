"""Table-1 generator: MilBack versus the state of the art.

MilBack's row is *demonstrated*, not declared: each capability cell is
backed by actually running the corresponding simulation and checking it
succeeds, so the table cannot silently drift from the code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import BaselineSystem, SystemCapabilities
from repro.baselines.millimetro import MillimetroSystem
from repro.baselines.mmtag import MmTagSystem
from repro.baselines.omniscatter import OmniScatterSystem
from repro.channel.scene import Scene2D
from repro.constants import (
    MAX_DOWNLINK_RATE_BPS,
    NODE_POWER_DOWNLINK_W,
    NODE_POWER_UPLINK_W,
)
from repro.sim.engine import MilBackSimulator

__all__ = [
    "MilBackSystem", "capability_table", "energy_comparison",
    "all_systems",
]


@dataclass
class MilBackSystem(BaselineSystem):
    """MilBack's entry, with demonstration probes."""

    probe_distance_m: float = 2.0
    probe_orientation_deg: float = 10.0
    seed: int = 2023

    name = "MilBack (This Work)"

    def _sim(self) -> MilBackSimulator:
        scene = Scene2D.single_node(
            self.probe_distance_m, orientation_deg=self.probe_orientation_deg
        )
        return MilBackSimulator(scene, seed=self.seed)

    def capabilities(self) -> SystemCapabilities:
        """Every "Yes" is earned by running the capability end to end."""
        rng = np.random.default_rng(self.seed)
        bits = rng.integers(0, 2, 64)
        sim = self._sim()
        uplink_ok = sim.simulate_uplink(bits, 10e6).ber < 0.01
        downlink_ok = sim.simulate_downlink(bits, 2e6).ber < 0.01
        loc = sim.simulate_localization()
        localization_ok = abs(loc.distance_error_m) < 0.5 and abs(loc.angle_error_deg) < 5.0
        ap_orient_ok = abs(sim.simulate_ap_orientation().error_deg) < 5.0
        node_orient_ok = abs(sim.simulate_node_orientation().error_deg) < 5.0
        return SystemCapabilities(
            uplink=uplink_ok,
            localization=localization_ok,
            downlink=downlink_ok,
            orientation_sensing=ap_orient_ok and node_orient_ok,
        )

    def energy_per_bit_j(self) -> float:
        """Uplink energy per bit at the 40 Mbps reference (0.8 nJ/bit)."""
        return NODE_POWER_UPLINK_W / 40e6

    def downlink_energy_per_bit_j(self) -> float:
        """Downlink energy per bit at 36 Mbps (0.5 nJ/bit)."""
        return NODE_POWER_DOWNLINK_W / MAX_DOWNLINK_RATE_BPS


def all_systems() -> list[BaselineSystem]:
    """Every system in the paper's Table 1, MilBack last."""
    return [MmTagSystem(), MillimetroSystem(), OmniScatterSystem(), MilBackSystem()]


def capability_table() -> list[dict[str, str]]:
    """Rows of Table 1: system name + four Yes/No capability cells."""
    rows = []
    for system in all_systems():
        row = {"Systems": system.name}
        row.update(system.capabilities().as_row())
        rows.append(row)
    return rows


def energy_comparison() -> list[dict[str, object]]:
    """Uplink energy-per-bit comparison (§9.6)."""
    rows = []
    for system in all_systems():
        energy = system.energy_per_bit_j()
        rows.append(
            {
                "Systems": system.name,
                "Uplink energy (nJ/bit)": (
                    round(energy * 1e9, 2) if energy is not None else "n/a"
                ),
            }
        )
    return rows
