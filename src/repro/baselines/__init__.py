"""Baseline systems: mmTag, Millimetro, OmniScatter, and the comparison."""

from repro.baselines.base import BaselineSystem, SystemCapabilities
from repro.baselines.mmtag import MmTagSystem
from repro.baselines.millimetro import MillimetroSystem
from repro.baselines.omniscatter import OmniScatterSystem
from repro.baselines.comparison import (
    MilBackSystem,
    capability_table,
    energy_comparison,
    all_systems,
)

__all__ = [
    "BaselineSystem",
    "SystemCapabilities",
    "MmTagSystem",
    "MillimetroSystem",
    "OmniScatterSystem",
    "MilBackSystem",
    "capability_table",
    "energy_comparison",
    "all_systems",
]
