"""Common baseline-system interface for the Table-1 comparison."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SystemCapabilities", "BaselineSystem"]


@dataclass(frozen=True)
class SystemCapabilities:
    """The four capability columns of the paper's Table 1."""

    uplink: bool
    localization: bool
    downlink: bool
    orientation_sensing: bool

    def as_row(self) -> dict[str, str]:
        """Yes/No cells, matching the table."""
        return {
            "Uplink Communication": "Yes" if self.uplink else "No",
            "Localization": "Yes" if self.localization else "No",
            "Downlink Communication": "Yes" if self.downlink else "No",
            "Orientation Sensing": "Yes" if self.orientation_sensing else "No",
        }


class BaselineSystem:
    """Base class: a named system with declared + *demonstrated* abilities.

    Capabilities are not just declared flags — each concrete system backs
    its "Yes" cells with a probe method that actually exercises the
    capability in simulation, so the comparison table is generated from
    demonstrated behaviour.
    """

    name = "baseline"

    def capabilities(self) -> SystemCapabilities:
        """Declared capability row."""
        raise NotImplementedError

    def energy_per_bit_j(self) -> float | None:
        """Uplink energy efficiency, or None when uplink is unsupported."""
        return None
