"""Millimetro baseline (MobiCom'21 [45]): localization-only retro tags.

Millimetro tags are Van Atta retroreflectors toggled at a per-tag
frequency; an FMCW radar localizes them at long range by looking for the
toggle sideband at the tag's beat frequency. No data uplink beyond the
identity beacon, no downlink, no orientation sensing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.antennas.van_atta import VanAttaArray
from repro.baselines.base import BaselineSystem, SystemCapabilities
from repro.channel.propagation import free_space_path_loss_db
from repro.constants import AP_HORN_GAIN_DBI, AP_TX_POWER_DBM
from repro.dsp.noise import thermal_noise_power_dbm
from repro.dsp.waveforms import SawtoothChirp
from repro.errors import ConfigurationError

__all__ = ["MillimetroSystem"]


@dataclass
class MillimetroSystem(BaselineSystem):
    """Behavioural Millimetro: FMCW radar + toggled Van Atta tag."""

    array: VanAttaArray = field(default_factory=VanAttaArray)
    chirp: SawtoothChirp = field(default_factory=SawtoothChirp)
    tx_power_dbm: float = AP_TX_POWER_DBM
    ap_gain_dbi: float = AP_HORN_GAIN_DBI
    toggle_rate_hz: float = 5e3
    implementation_loss_db: float = 4.0
    noise_figure_db: float = 5.0

    name = "Millimetro [45]"

    def capabilities(self) -> SystemCapabilities:
        return SystemCapabilities(
            uplink=False, localization=True, downlink=False, orientation_sensing=False
        )

    def ranging_snr_db(
        self,
        distance_m: float,
        incidence_deg: float = 0.0,
        integration_chirps: int = 64,
    ) -> float:
        """Post-integration SNR of the tag's toggle sideband.

        Coherent integration across chirps buys 10·log10(N) — the lever
        behind Millimetro's long-range claim.
        """
        if distance_m <= 0:
            raise ConfigurationError("distance must be positive")
        if integration_chirps < 1:
            raise ConfigurationError("need at least one chirp")
        fspl = float(free_space_path_loss_db(distance_m, self.chirp.center_hz))
        retro = float(self.array.retro_gain_dbi(incidence_deg, self.chirp.center_hz))
        rx_power = (
            self.tx_power_dbm
            + 2.0 * self.ap_gain_dbi
            + retro
            - 2.0 * fspl
            - self.implementation_loss_db
        )
        # Per-chirp resolution bandwidth = 1 / chirp duration.
        noise = thermal_noise_power_dbm(
            1.0 / self.chirp.duration_s, self.noise_figure_db
        )
        import math

        return rx_power - noise + 10.0 * math.log10(integration_chirps)

    def range_resolution_m(self) -> float:
        """c / 2B of the radar chirp."""
        return self.chirp.range_resolution_m()
