"""mmTag baseline (SIGCOMM'21 [35]): uplink-only mmWave backscatter.

mmTag's node is a Van Atta retroreflector with a modulating switch: great
uplink energy efficiency (2.4 nJ/bit per the paper's §9.6 comparison),
but no signal port — so no downlink — and no localization support in its
published design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.antennas.van_atta import VanAttaArray
from repro.baselines.base import BaselineSystem, SystemCapabilities
from repro.channel.propagation import free_space_path_loss_db
from repro.constants import (
    AP_HORN_GAIN_DBI,
    AP_TX_POWER_DBM,
    BAND_CENTER_HZ,
    MMTAG_ENERGY_PER_BIT_J,
)
from repro.dsp.noise import thermal_noise_power_dbm
from repro.errors import ConfigurationError

__all__ = ["MmTagSystem"]


@dataclass
class MmTagSystem(BaselineSystem):
    """Behavioural mmTag: Van Atta + switch, uplink only."""

    array: VanAttaArray = field(default_factory=VanAttaArray)
    tx_power_dbm: float = AP_TX_POWER_DBM
    ap_gain_dbi: float = AP_HORN_GAIN_DBI
    carrier_hz: float = BAND_CENTER_HZ
    modulation_loss_db: float = 3.9
    implementation_loss_db: float = 4.0
    noise_figure_db: float = 5.0
    node_power_w: float = 2.4e-9 * 1e9 * 1e-3  # 2.4 nJ/bit at 1 Mbps reference

    name = "mmTag [35]"

    def capabilities(self) -> SystemCapabilities:
        return SystemCapabilities(
            uplink=True, localization=False, downlink=False, orientation_sensing=False
        )

    def energy_per_bit_j(self) -> float:
        """Published uplink energy efficiency."""
        return MMTAG_ENERGY_PER_BIT_J

    def uplink_snr_db(
        self,
        distance_m: float,
        incidence_deg: float = 0.0,
        bit_rate_bps: float = 10e6,
    ) -> float:
        """Uplink SNR of the retro-reflected, switch-modulated signal.

        Two-way Friis with the Van Atta's combined retro gain; the wide
        retro field of view is mmTag's advantage over a fixed beam — and
        what MilBack trades for its signal ports.
        """
        if distance_m <= 0:
            raise ConfigurationError("distance must be positive")
        fspl = float(free_space_path_loss_db(distance_m, self.carrier_hz))
        retro = float(self.array.retro_gain_dbi(incidence_deg, self.carrier_hz))
        rx_power = (
            self.tx_power_dbm
            + 2.0 * self.ap_gain_dbi
            + retro
            - 2.0 * fspl
            - self.modulation_loss_db
            - self.implementation_loss_db
        )
        noise = thermal_noise_power_dbm(bit_rate_bps / 2.0, self.noise_figure_db)
        return rx_power - noise
