"""OmniScatter baseline (MobiSys'22 [12]): FMCW-codomain uplink + ranging.

OmniScatter piggybacks tag data on commodity FMCW radar chirps with
extreme-sensitivity demodulation; it provides uplink and (inherent to
FMCW) tag ranging, but no downlink path to the tag and no orientation
sensing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import BaselineSystem, SystemCapabilities
from repro.channel.propagation import free_space_path_loss_db
from repro.constants import AP_HORN_GAIN_DBI, AP_TX_POWER_DBM
from repro.dsp.noise import thermal_noise_power_dbm
from repro.dsp.waveforms import SawtoothChirp
from repro.errors import ConfigurationError

__all__ = ["OmniScatterSystem"]


@dataclass
class OmniScatterSystem(BaselineSystem):
    """Behavioural OmniScatter: chirp-synchronous tag switching."""

    chirp: SawtoothChirp = field(default_factory=SawtoothChirp)
    tx_power_dbm: float = AP_TX_POWER_DBM
    ap_gain_dbi: float = AP_HORN_GAIN_DBI
    tag_antenna_gain_dbi: float = 3.0  # omnidirectional patch: the point
    modulation_loss_db: float = 3.9
    implementation_loss_db: float = 4.0
    noise_figure_db: float = 5.0
    #: Coherent processing gain of the FMCW code-domain demodulation that
    #: gives OmniScatter its "extreme sensitivity" headline.
    processing_gain_db: float = 40.0

    name = "OmniScatter [12]"

    def capabilities(self) -> SystemCapabilities:
        return SystemCapabilities(
            uplink=True, localization=True, downlink=False, orientation_sensing=False
        )

    def energy_per_bit_j(self) -> float:
        """Order of mmTag's figure: a single low-rate switch."""
        return 1.0e-9

    def uplink_snr_db(self, distance_m: float, bit_rate_bps: float = 1e3) -> float:
        """Post-processing SNR of the tag's code-domain response.

        The omni tag antenna costs ~20 dB of gain versus a Van Atta /
        FSA, bought back by huge processing gain at very low data rates —
        OmniScatter's design point (kbps-class sensors, many tags).
        """
        if distance_m <= 0:
            raise ConfigurationError("distance must be positive")
        if bit_rate_bps <= 0:
            raise ConfigurationError("bit rate must be positive")
        fspl = float(free_space_path_loss_db(distance_m, self.chirp.center_hz))
        rx_power = (
            self.tx_power_dbm
            + 2.0 * self.ap_gain_dbi
            + 2.0 * self.tag_antenna_gain_dbi
            - 2.0 * fspl
            - self.modulation_loss_db
            - self.implementation_loss_db
        )
        noise = thermal_noise_power_dbm(bit_rate_bps, self.noise_figure_db)
        return rx_power - noise + self.processing_gain_db

    def range_resolution_m(self) -> float:
        """c / 2B of the host radar chirp."""
        return self.chirp.range_resolution_m()
