"""Fault taxonomy: kinds, sites, and the :class:`FaultSpec` dataclass.

A *fault kind* names one physical failure mode of the MilBack hardware
or link (a sticking SPDT switch, a saturating ADC, an interfering
radar, ...).  Each kind attaches to exactly one *injection site* — the
seam in the clean pipeline where :mod:`repro.faults.plan` applies it.
A :class:`FaultSpec` is the user-facing knob: a kind plus an occurrence
``rate`` (how often the fault strikes) and an ``intensity`` (how hard
it strikes, normalised to ``[0, 1]``).

The registry here is purely declarative; the corruption math lives in
:mod:`repro.faults.injectors` and the activation machinery in
:mod:`repro.faults.plan`.  See ``docs/ROBUSTNESS.md`` for the taxonomy
table and the physical meaning of each intensity scale.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import FaultInjectionError

__all__ = [
    "FaultSite",
    "FaultKind",
    "FaultSpec",
    "FAULT_KINDS",
    "fault_kind",
    "parse_fault_specs",
]


class FaultSite(enum.Enum):
    """The pipeline seam a fault kind corrupts."""

    BURST = "burst"  # synthesized beat-note burst (engine)
    ADC = "adc"  # hardware.adc sampling / quantisation
    DETECTOR = "detector"  # hardware.envelope_detector output
    SWITCH = "switch"  # hardware.switch amplitudes
    LINK = "link"  # protocol.link session outcomes


@dataclass(frozen=True)
class FaultKind:
    """A named failure mode bound to one injection site."""

    name: str
    site: FaultSite
    description: str


#: Registry of every supported fault kind, keyed by name.
FAULT_KINDS: dict[str, FaultKind] = {
    kind.name: kind
    for kind in (
        FaultKind(
            "chirp_drop",
            FaultSite.BURST,
            "A whole chirp's beat record is attenuated (intensity<1) or "
            "zeroed (intensity>=1), as when the tag misses a trigger.",
        ),
        FaultKind(
            "chirp_truncation",
            FaultSite.BURST,
            "The trailing `intensity` fraction of an affected chirp is "
            "zeroed, as when the sweep aborts early.",
        ),
        FaultKind(
            "interference_burst",
            FaultSite.BURST,
            "An in-band CW tone (amplitude = intensity x record RMS) is "
            "added to affected chirps, as from a co-channel radar.",
        ),
        FaultKind(
            "clock_skew",
            FaultSite.BURST,
            "A per-burst clock offset adds a progressive phase ramp "
            "across chirps (up to intensity-scaled cycles).",
        ),
        FaultKind(
            "symbol_jitter",
            FaultSite.BURST,
            "Affected chirps are circularly shifted in time by a "
            "Gaussian jitter scaled by intensity, as from tag timing "
            "wander.",
        ),
        FaultKind(
            "adc_saturation",
            FaultSite.ADC,
            "Affected captures are overdriven before clipping "
            "(gain = 1 + intensity), saturating the converter.",
        ),
        FaultKind(
            "adc_stuck_bits",
            FaultSite.ADC,
            "A fraction of code bits (scaled by intensity) sticks at 1 "
            "on affected captures, as from a damaged converter.",
        ),
        FaultKind(
            "detector_gain_drift",
            FaultSite.DETECTOR,
            "The envelope detector's responsivity drifts by up to "
            "+/- 50% x intensity on affected detections.",
        ),
        FaultKind(
            "switch_stuck_reflective",
            FaultSite.SWITCH,
            "The SPDT switch partially sticks reflective: the absorptive "
            "amplitude is pulled toward the reflective one by intensity.",
        ),
        FaultKind(
            "switch_stuck_absorptive",
            FaultSite.SWITCH,
            "The SPDT switch partially sticks absorptive: the reflective "
            "amplitude is pulled toward the absorptive one by intensity.",
        ),
        FaultKind(
            "link_drop",
            FaultSite.LINK,
            "An affected link session is dropped outright (raises "
            "ProtocolError), exercising the ARQ recovery path.",
        ),
    )
}


def fault_kind(name: str) -> FaultKind:
    """Look up a registered fault kind by name."""
    try:
        return FAULT_KINDS[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_KINDS))
        raise FaultInjectionError(f"unknown fault kind {name!r}; known kinds: {known}") from None


@dataclass(frozen=True)
class FaultSpec:
    """One configured fault: a kind plus occurrence rate and intensity.

    ``rate`` is the per-opportunity probability in ``[0, 1]`` that the
    fault strikes (per chirp, per capture, per session — whatever the
    kind's site exposes).  ``intensity`` in ``[0, 1]`` scales how badly
    an affected opportunity is corrupted; a spec with ``rate`` or
    ``intensity`` of zero is *unarmed* and its injector is skipped
    entirely, so outputs are bitwise identical to the clean pipeline.
    """

    kind: str
    rate: float = 1.0
    intensity: float = 1.0

    def __post_init__(self) -> None:
        fault_kind(self.kind)  # validates the name
        if not 0.0 <= self.rate <= 1.0:
            raise FaultInjectionError(f"fault rate must be in [0, 1], got {self.rate}")
        if not 0.0 <= self.intensity <= 1.0:
            raise FaultInjectionError(f"fault intensity must be in [0, 1], got {self.intensity}")

    @property
    def site(self) -> FaultSite:
        return fault_kind(self.kind).site

    @property
    def armed(self) -> bool:
        """True when this spec can actually corrupt anything."""
        return self.rate > 0.0 and self.intensity > 0.0

    def with_rate(self, rate: float) -> "FaultSpec":
        """Copy of this spec at a different occurrence rate."""
        return replace(self, rate=rate)


def parse_fault_specs(text: str) -> tuple[FaultSpec, ...]:
    """Parse a CLI fault string into specs.

    Grammar: comma-separated entries of ``kind[:rate[:intensity]]``,
    e.g. ``"link_drop:0.2,adc_saturation:0.5:0.8"``.  Omitted fields
    default to 1.0.
    """
    specs: list[FaultSpec] = []
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        fields = entry.split(":")
        if len(fields) > 3:
            raise FaultInjectionError(
                f"malformed fault spec {entry!r}; expected kind[:rate[:intensity]]"
            )
        try:
            rate = float(fields[1]) if len(fields) > 1 else 1.0
            intensity = float(fields[2]) if len(fields) > 2 else 1.0
        except ValueError:
            raise FaultInjectionError(
                f"malformed fault spec {entry!r}; rate/intensity must be numbers"
            ) from None
        specs.append(FaultSpec(fields[0], rate=rate, intensity=intensity))
    if not specs:
        raise FaultInjectionError("empty fault spec string")
    return tuple(specs)
