"""Resilience campaigns: sweep fault rate, measure degradation.

A campaign runs ``n_trials`` independent end-to-end trials at each
fault rate: one localization fix, one raw downlink and uplink burst
(for BER), and one ARQ-protected transfer over a fresh
:class:`~repro.protocol.arq.ReliableChannel`. Each trial gets *two*
pre-spawned RNG streams — one for the simulation, one for the fault
plan — exactly the :mod:`repro.parallel` discipline, so a seeded
campaign replays bit-for-bit serial or on any worker count.

The output is a set of degradation curves (delivery ratio, mean
attempts, range/AoA error, BER vs fault rate) plus the resilience
invariant the CI chaos-smoke job enforces: below the configured
drop-rate threshold the ARQ layer must deliver *every* transfer within
a bounded mean attempt count (see ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.channel.scene import Scene2D
from repro.errors import ConfigurationError, FaultInjectionError, MilBackError
from repro.faults.plan import FaultPlan, activate
from repro.faults.spec import FaultSpec
from repro.node.firmware import PayloadDirection
from repro.parallel import parallel_map, resolve_max_workers
from repro.protocol.arq import ReliableChannel, RetryBackoff
from repro.protocol.link import MilBackLink
from repro.sim.engine import MilBackSimulator
from repro.utils.rng import RngLike, spawn_rngs

__all__ = [
    "CampaignConfig",
    "CampaignPoint",
    "CampaignResult",
    "run_campaign",
    "check_resilience",
    "main",
]

#: Number of payload bits in the raw BER probe bursts.
_BER_PROBE_BITS = 256


@dataclass(frozen=True)
class CampaignConfig:
    """One resilience campaign: which faults, swept over which rates.

    ``kinds`` are fault-kind names; at each swept ``rate`` every kind is
    armed as ``FaultSpec(kind, rate, intensity)``. The ARQ invariant
    fields document the resilience contract: at rates at or below
    ``drop_rate_threshold`` the channel must deliver 100% of transfers
    with mean attempts at or below ``mean_attempts_bound``.
    """

    kinds: tuple[str, ...] = ("link_drop",)
    rates: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3)
    intensity: float = 1.0
    n_trials: int = 5
    distance_m: float = 3.0
    orientation_deg: float = 10.0
    payload: bytes = b"MilBack!"
    bit_rate_bps: float = 10e6
    ack_bit_rate_bps: float = 2e6
    max_attempts: int = 8
    backoff: Optional[RetryBackoff] = None
    timeout_s: Optional[float] = None
    drop_rate_threshold: float = 0.2
    mean_attempts_bound: float = 4.0

    def __post_init__(self) -> None:
        if not self.kinds:
            raise ConfigurationError("campaign needs at least one fault kind")
        if not self.rates:
            raise ConfigurationError("campaign needs at least one rate")
        if self.n_trials < 1:
            raise ConfigurationError("campaign needs at least one trial")
        # Validate kinds/rates/intensity eagerly via FaultSpec.
        for rate in self.rates:
            self.specs_at(rate)

    def specs_at(self, rate: float) -> tuple[FaultSpec, ...]:
        """The fault specs this campaign arms at one swept rate."""
        return tuple(
            FaultSpec(kind, rate=rate, intensity=self.intensity) for kind in self.kinds
        )


@dataclass(frozen=True)
class CampaignPoint:
    """Aggregated outcomes of all trials at one fault rate."""

    rate: float
    n_trials: int
    n_delivered: int
    n_trial_errors: int
    mean_attempts: float
    mean_retries_after_ack_failure: float
    range_error_m: float
    angle_error_deg: float
    downlink_ber: float
    uplink_ber: float
    injected: int

    @property
    def delivery_ratio(self) -> float:
        return self.n_delivered / self.n_trials


@dataclass(frozen=True)
class CampaignResult:
    """A full campaign: config + one point per swept rate."""

    config: CampaignConfig
    points: tuple[CampaignPoint, ...]

    def violations(self) -> list[str]:
        """Resilience-invariant breaches (empty when the contract holds).

        Delivery is compared on trial *counts*, not ratios, so the 100%
        requirement is exact.
        """
        found = []
        for point in self.points:
            if point.rate > self.config.drop_rate_threshold:
                continue
            if point.n_delivered != point.n_trials:
                found.append(
                    f"rate {point.rate:g}: delivered {point.n_delivered}/"
                    f"{point.n_trials} transfers (expected all) below the "
                    f"drop-rate threshold {self.config.drop_rate_threshold:g}"
                )
            if point.mean_attempts > self.config.mean_attempts_bound:
                found.append(
                    f"rate {point.rate:g}: mean attempts "
                    f"{point.mean_attempts:.2f} exceeds the bound "
                    f"{self.config.mean_attempts_bound:g}"
                )
        return found

    def rows(self) -> str:
        """Human-readable degradation table."""
        kinds = "+".join(self.config.kinds)
        lines = [
            f"Fault campaign: {kinds} @ intensity {self.config.intensity:g}, "
            f"{self.config.n_trials} trials/point, d = {self.config.distance_m:g} m",
            f"ARQ: max {self.config.max_attempts} attempts; invariant: 100% "
            f"delivery and <= {self.config.mean_attempts_bound:g} mean attempts "
            f"at rate <= {self.config.drop_rate_threshold:g}",
            "",
            "rate   deliv  attempts  ack-retry  range[m]  angle[deg]  "
            "DL BER   UL BER   injected",
        ]
        for p in self.points:
            lines.append(
                f"{p.rate:5.2f}  {p.delivery_ratio:5.0%}  {p.mean_attempts:8.2f}  "
                f"{p.mean_retries_after_ack_failure:9.2f}  "
                f"{_fmt(p.range_error_m, '8.3f')}  {_fmt(p.angle_error_deg, '10.2f')}  "
                f"{_fmt(p.downlink_ber, '7.4f')}  {_fmt(p.uplink_ber, '7.4f')}  "
                f"{p.injected:8d}"
            )
        return "\n".join(lines)


def _fmt(value: float, spec: str) -> str:
    """Format a float, keeping NaN (no trial produced the metric) visible."""
    if math.isnan(value):
        width = int(spec.split(".")[0])
        return "nan".rjust(width)
    return format(value, spec)


def _run_trial(
    config: CampaignConfig,
    specs: tuple[FaultSpec, ...],
    sim_rng: np.random.Generator,
    fault_rng: np.random.Generator,
) -> tuple[float, ...]:
    """One end-to-end trial under an active fault plan.

    Returns plain floats (delivered, attempts, ack retries, |range err|,
    |angle err|, DL BER, UL BER, error count, injections) so results
    pickle cheaply across the worker boundary.
    """
    scene = Scene2D.single_node(config.distance_m, orientation_deg=config.orientation_deg)
    sim = MilBackSimulator(scene, seed=sim_rng)
    plan = FaultPlan(specs, rng=fault_rng)
    nan = float("nan")
    range_error_m, angle_error_deg = nan, nan
    downlink_ber, uplink_ber = nan, nan
    trial_errors = 0
    with activate(plan):
        try:
            fix = sim.simulate_localization()
            range_error_m = abs(fix.distance_error_m)
            angle_error_deg = abs(fix.angle_error_deg)
        except MilBackError:
            trial_errors += 1
        probe_bits = sim_rng.integers(0, 2, size=_BER_PROBE_BITS)
        try:
            downlink_ber = sim.simulate_downlink(probe_bits).ber
        except MilBackError:
            trial_errors += 1
        try:
            uplink_ber = sim.simulate_uplink(probe_bits).ber
        except MilBackError:
            trial_errors += 1
        channel = ReliableChannel(
            MilBackLink(sim),
            max_attempts=config.max_attempts,
            backoff=config.backoff,
            timeout_s=config.timeout_s,
        )
        try:
            transfer = channel.send_reliable(
                config.payload,
                direction=PayloadDirection.UPLINK,
                bit_rate_bps=config.bit_rate_bps,
                ack_bit_rate_bps=config.ack_bit_rate_bps,
            )
            delivered = 1.0 if transfer.delivered else 0.0
            attempts = float(transfer.attempts)
        except MilBackError:
            # Only failures *outside* the ARQ retry contract land here
            # (e.g. hardware driven out of envelope by an extreme fault).
            trial_errors += 1
            delivered, attempts = 0.0, float(config.max_attempts)
        retries_after_ack = float(channel.stats.retries_after_ack_failure)
    injected = float(sum(plan.injections.values()))
    return (
        delivered,
        attempts,
        retries_after_ack,
        range_error_m,
        angle_error_deg,
        downlink_ber,
        uplink_ber,
        float(trial_errors),
        injected,
    )


def _campaign_task(
    config: CampaignConfig,
    task: tuple[tuple[FaultSpec, ...], np.random.Generator, np.random.Generator],
) -> tuple[float, ...]:
    """Module-level task wrapper so campaigns stay picklable.

    ``functools.partial(_campaign_task, config)`` crosses a pickle
    boundary (the config and specs are frozen dataclasses of plain
    data), which lets campaigns ride an installed
    :class:`~repro.parallel.PersistentPool` instead of forking cold.
    """
    return _run_trial(config, *task)


def _nanmean(values: Sequence[float]) -> float:
    """Mean ignoring NaNs; NaN when every value is NaN."""
    finite = [v for v in values if not math.isnan(v)]
    return float(np.mean(finite)) if finite else float("nan")


def run_campaign(
    config: CampaignConfig,
    seed: RngLike = 0,
    max_workers: int | None = None,
) -> CampaignResult:
    """Execute the campaign, serial or on a worker pool.

    Every ``(rate, trial)`` pair consumes exactly the two RNG streams a
    serial run would hand it, so the returned points — and the merged
    ``faults.*`` obs counters — are identical at any worker count.
    """
    rngs = spawn_rngs(seed, 2 * len(config.rates) * config.n_trials)
    tasks = []
    for i, rate in enumerate(config.rates):
        specs = config.specs_at(rate)
        for j in range(config.n_trials):
            k = 2 * (i * config.n_trials + j)
            tasks.append((specs, rngs[k], rngs[k + 1]))
    workers = resolve_max_workers(max_workers)
    with obs.span(
        "faults.campaign",
        kinds=",".join(config.kinds),
        points=len(config.rates),
        trials=config.n_trials,
    ):
        result = parallel_map(
            functools.partial(_campaign_task, config), tasks, max_workers=workers
        )
        obs.counter("faults.campaign.points").inc(len(config.rates))
        obs.counter("faults.campaign.trials").inc(len(tasks))
        points = []
        for i, rate in enumerate(config.rates):
            rows = result.values[i * config.n_trials : (i + 1) * config.n_trials]
            delivered = int(round(sum(row[0] for row in rows)))
            point = CampaignPoint(
                rate=float(rate),
                n_trials=config.n_trials,
                n_delivered=delivered,
                n_trial_errors=int(round(sum(row[7] for row in rows))),
                mean_attempts=float(np.mean([row[1] for row in rows])),
                mean_retries_after_ack_failure=float(
                    np.mean([row[2] for row in rows])
                ),
                range_error_m=_nanmean([row[3] for row in rows]),
                angle_error_deg=_nanmean([row[4] for row in rows]),
                downlink_ber=_nanmean([row[5] for row in rows]),
                uplink_ber=_nanmean([row[6] for row in rows]),
                injected=int(round(sum(row[8] for row in rows))),
            )
            obs.counter("faults.campaign.delivered").inc(point.n_delivered)
            points.append(point)
    return CampaignResult(config=config, points=tuple(points))


def check_resilience(result: CampaignResult) -> None:
    """Raise :class:`FaultInjectionError` when the invariant is broken."""
    violations = result.violations()
    if violations:
        obs.counter("faults.campaign.invariant_violations").inc(len(violations))
        raise FaultInjectionError(
            "resilience invariant violated:\n  " + "\n  ".join(violations)
        )


def main(
    kinds: Sequence[str] = ("link_drop",),
    rates: Sequence[float] = (0.0, 0.1, 0.2, 0.3),
    intensity: float = 1.0,
    n_trials: int = 5,
    distance_m: float = 3.0,
    seed: int = 0,
    max_workers: int | None = None,
) -> CampaignResult:
    """Entry point behind ``python -m repro faults``."""
    config = CampaignConfig(
        kinds=tuple(kinds),
        rates=tuple(float(rate) for rate in rates),
        intensity=intensity,
        n_trials=n_trials,
        distance_m=distance_m,
    )
    return run_campaign(config, seed=seed, max_workers=max_workers)
