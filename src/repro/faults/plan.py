"""Fault plans: activation, accounting, and the pipeline hook points.

A :class:`FaultPlan` bundles the configured
:class:`~repro.faults.spec.FaultSpec` list with its *own* RNG stream —
deliberately separate from the simulation RNG, so arming a plan never
perturbs the clean pipeline's draws — plus an injection ledger mirrored
into the ``faults.injected{type=...}`` obs counter.

Plans activate through the :func:`activate` context manager, which
swaps a module-global slot.  The hook functions at the bottom of this
module are what the instrumented seams in ``repro.sim`` /
``repro.hardware`` / ``repro.protocol`` call; each one starts with

    ``if _ACTIVE is None: return value``

so the clean path costs one global load and one comparison and returns
the *same object* — bitwise identical to a build without the hooks.
A plan whose specs are all unarmed (rate or intensity of zero) takes
the same early exit per site.
"""

from __future__ import annotations

import contextlib
from typing import Iterable, Iterator, Optional

import numpy as np

from repro import obs
from repro.faults import injectors
from repro.faults.spec import FaultSite, FaultSpec
from repro.utils.rng import RngLike, make_rng

__all__ = [
    "FaultPlan",
    "active_plan",
    "activate",
    "corrupt_burst",
    "adc_input",
    "adc_codes",
    "detector_output",
    "switch_toggle_amplitudes",
    "switch_reflection",
    "link_drops",
]


class FaultPlan:
    """A set of fault specs plus the RNG stream that drives them.

    The plan's generator is spawned/seeded by the caller (campaigns
    pre-spawn one per trial, exactly like :mod:`repro.parallel` does
    for simulation streams), so replays are bit-for-bit at any worker
    count.  ``injections`` tallies how many opportunities each kind
    actually corrupted.
    """

    def __init__(self, specs: Iterable[FaultSpec], rng: RngLike = None) -> None:
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.rng: np.random.Generator = make_rng(rng)
        self.injections: dict[str, int] = {}
        self._armed: dict[FaultSite, tuple[FaultSpec, ...]] = {}
        for site in FaultSite:
            self._armed[site] = tuple(
                spec for spec in self.specs if spec.site is site and spec.armed
            )

    def armed_specs(self, site: FaultSite) -> tuple[FaultSpec, ...]:
        """The armed specs targeting ``site`` (possibly empty)."""
        return self._armed[site]

    def record(self, kind: str, count: int) -> None:
        """Tally ``count`` injections of ``kind`` (no-op when zero)."""
        if count > 0:
            self.injections[kind] = self.injections.get(kind, 0) + count
            obs.counter("faults.injected", type=kind).inc(count)


#: The plan hooks consult; None means the clean fast path.
_ACTIVE: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The currently activated plan, or None."""
    return _ACTIVE


@contextlib.contextmanager
def activate(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the dynamic extent of the ``with`` block.

    Nesting is allowed; the previous plan (or None) is restored on
    exit, so campaigns can scope faults to a single trial.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def corrupt_burst(samples: np.ndarray) -> np.ndarray:
    """Hook: synthesized ``(n_chirps, n_rx, n)`` beat burst (engine)."""
    plan = _ACTIVE
    if plan is None:
        return samples
    specs = plan.armed_specs(FaultSite.BURST)
    if not specs:
        return samples
    return injectors.apply_burst_faults(samples, specs, plan.rng, plan.record)


def adc_input(values: np.ndarray) -> np.ndarray:
    """Hook: analog voltages entering :meth:`Adc.sample` (pre-clip)."""
    plan = _ACTIVE
    if plan is None:
        return values
    specs = plan.armed_specs(FaultSite.ADC)
    if not specs:
        return values
    return injectors.apply_adc_input_faults(values, specs, plan.rng, plan.record)


def adc_codes(codes: np.ndarray, n_bits: int) -> np.ndarray:
    """Hook: rounded quantiser codes inside :meth:`Adc.sample`."""
    plan = _ACTIVE
    if plan is None:
        return codes
    specs = plan.armed_specs(FaultSite.ADC)
    if not specs:
        return codes
    return injectors.apply_adc_code_faults(codes, n_bits, specs, plan.rng, plan.record)


def detector_output(envelope_v: np.ndarray) -> np.ndarray:
    """Hook: envelope-detector output voltages."""
    plan = _ACTIVE
    if plan is None:
        return envelope_v
    specs = plan.armed_specs(FaultSite.DETECTOR)
    if not specs:
        return envelope_v
    return injectors.apply_detector_faults(envelope_v, specs, plan.rng, plan.record)


def switch_toggle_amplitudes(on_amp: float, off_amp: float) -> tuple[float, float]:
    """Hook: the engine's modulated on/off reflection amplitudes."""
    plan = _ACTIVE
    if plan is None:
        return on_amp, off_amp
    specs = plan.armed_specs(FaultSite.SWITCH)
    if not specs:
        return on_amp, off_amp
    return injectors.apply_switch_toggle_faults(
        on_amp, off_amp, specs, plan.rng, plan.record
    )


def switch_reflection(amplitude: float, reflect_amp: float, absorb_amp: float) -> float:
    """Hook: a behavioural switch's per-state reflection amplitude."""
    plan = _ACTIVE
    if plan is None:
        return amplitude
    specs = plan.armed_specs(FaultSite.SWITCH)
    if not specs:
        return amplitude
    return injectors.apply_switch_reflection_faults(
        amplitude, reflect_amp, absorb_amp, specs, plan.rng, plan.record
    )


def link_drops(direction: str) -> bool:
    """Hook: True when the protocol session should be dropped."""
    plan = _ACTIVE
    if plan is None:
        return False
    specs = plan.armed_specs(FaultSite.LINK)
    if not specs:
        return False
    return injectors.link_session_dropped(direction, specs, plan.rng, plan.record)
