"""Corruption math for each fault kind.

Every function here takes the clean value(s) for one injection site,
the *armed* :class:`~repro.faults.spec.FaultSpec` list for that site,
the plan's dedicated RNG, and a ``record(kind, count)`` callback, and
returns the (possibly) corrupted value.  Two invariants keep campaigns
deterministic and the clean path exact:

* **Fixed draw schedule** — each spec consumes the same number of RNG
  draws per call regardless of which opportunities it ends up hitting,
  so one trial's stream never depends on another fault's outcome.
* **Copy-on-arm** — array inputs are copied once before mutation, so
  cached or caller-held arrays are never corrupted in place; when no
  spec is armed the caller short-circuits and the original object flows
  through untouched.

These functions are internal to :mod:`repro.faults`; library code goes
through the hook functions on the package root (enforced by lint rule
ML010).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.faults.spec import FaultSpec

__all__ = [
    "apply_burst_faults",
    "apply_adc_input_faults",
    "apply_adc_code_faults",
    "apply_detector_faults",
    "apply_switch_toggle_faults",
    "apply_switch_reflection_faults",
    "link_session_dropped",
]

RecordFn = Callable[[str, int], None]

#: Maximum clock-skew phase progression, in cycles per chirp index, at
#: intensity 1.0.
_MAX_SKEW_CYCLES_PER_CHIRP = 0.25

#: Maximum symbol-jitter circular shift, as a fraction of the record
#: length, at intensity 1.0 (one jitter sigma).
_MAX_JITTER_FRACTION = 0.05

#: Envelope-detector gain drift span at intensity 1.0 (+/- 50%).
_DRIFT_SPAN = 0.5

#: Normalised-frequency band the interference tone is drawn from.
_INTERFERENCE_F_LO = 0.05
_INTERFERENCE_F_HI = 0.45


def apply_burst_faults(
    samples: np.ndarray,
    specs: Sequence[FaultSpec],
    rng: np.random.Generator,
    record: RecordFn,
) -> np.ndarray:
    """Corrupt a synthesized ``(n_chirps, n_rx, n)`` beat burst."""
    out = samples.copy()
    n_chirps, _, n = out.shape
    for spec in specs:
        if spec.kind == "chirp_drop":
            mask = rng.uniform(size=n_chirps) < spec.rate
            out[mask] *= 1.0 - spec.intensity
            record(spec.kind, int(np.count_nonzero(mask)))
        elif spec.kind == "chirp_truncation":
            mask = rng.uniform(size=n_chirps) < spec.rate
            n_cut = int(round(spec.intensity * n))
            if n_cut > 0:
                out[mask, :, n - n_cut :] = 0.0
            record(spec.kind, int(np.count_nonzero(mask)))
        elif spec.kind == "interference_burst":
            mask = rng.uniform(size=n_chirps) < spec.rate
            f_norm = rng.uniform(_INTERFERENCE_F_LO, _INTERFERENCE_F_HI, size=n_chirps)
            phase_rad = rng.uniform(0.0, 2.0 * np.pi, size=n_chirps)
            for chirp in np.flatnonzero(mask):
                rms = float(np.sqrt(np.mean(np.abs(out[chirp]) ** 2)))
                tone = np.exp(
                    1j * (2.0 * np.pi * f_norm[chirp] * np.arange(n) + phase_rad[chirp])
                )
                out[chirp] += spec.intensity * rms * tone
            record(spec.kind, int(np.count_nonzero(mask)))
        elif spec.kind == "clock_skew":
            struck = rng.uniform() < spec.rate
            sign = rng.uniform(-1.0, 1.0)
            if struck:
                skew = spec.intensity * _MAX_SKEW_CYCLES_PER_CHIRP * sign
                ramp = np.exp(2j * np.pi * skew * np.arange(n_chirps))
                out *= ramp[:, np.newaxis, np.newaxis]
                record(spec.kind, n_chirps)
        elif spec.kind == "symbol_jitter":
            mask = rng.uniform(size=n_chirps) < spec.rate
            sigma = rng.standard_normal(size=n_chirps)
            shifts = np.rint(spec.intensity * _MAX_JITTER_FRACTION * n * sigma).astype(int)
            injected = 0
            for chirp in np.flatnonzero(mask):
                if shifts[chirp] != 0:
                    out[chirp] = np.roll(out[chirp], shifts[chirp], axis=-1)
                    injected += 1
            record(spec.kind, injected)
    return out


def apply_adc_input_faults(
    values: np.ndarray,
    specs: Sequence[FaultSpec],
    rng: np.random.Generator,
    record: RecordFn,
) -> np.ndarray:
    """Corrupt the analog voltages entering the ADC (pre-clip)."""
    out = values
    for spec in specs:
        if spec.kind == "adc_saturation":
            struck = rng.uniform() < spec.rate
            if struck:
                out = out * (1.0 + spec.intensity)
                record(spec.kind, out.size)
    return out


def apply_adc_code_faults(
    codes: np.ndarray,
    n_bits: int,
    specs: Sequence[FaultSpec],
    rng: np.random.Generator,
    record: RecordFn,
) -> np.ndarray:
    """Corrupt the integer-valued quantiser codes (post-round)."""
    out = codes
    for spec in specs:
        if spec.kind == "adc_stuck_bits":
            struck = rng.uniform() < spec.rate
            n_stuck = max(1, int(round(spec.intensity * n_bits / 2)))
            positions = rng.choice(n_bits, size=min(n_stuck, n_bits), replace=False)
            if struck:
                bitmask = 0
                for position in positions:
                    bitmask |= 1 << int(position)
                stuck = out.astype(np.int64) | bitmask
                out = np.minimum(stuck, 2**n_bits - 1).astype(codes.dtype)
                record(spec.kind, out.size)
    return out


def apply_detector_faults(
    envelope_v: np.ndarray,
    specs: Sequence[FaultSpec],
    rng: np.random.Generator,
    record: RecordFn,
) -> np.ndarray:
    """Corrupt the envelope detector's output voltages."""
    out_v = envelope_v
    for spec in specs:
        if spec.kind == "detector_gain_drift":
            struck = rng.uniform() < spec.rate
            sign = rng.uniform(-1.0, 1.0)
            if struck:
                out_v = out_v * (1.0 + spec.intensity * _DRIFT_SPAN * sign)
                record(spec.kind, out_v.size)
    return out_v


def apply_switch_toggle_faults(
    on_amp: float,
    off_amp: float,
    specs: Sequence[FaultSpec],
    rng: np.random.Generator,
    record: RecordFn,
) -> tuple[float, float]:
    """Corrupt the engine's modulated on/off reflection amplitudes."""
    for spec in specs:
        if spec.kind == "switch_stuck_reflective":
            if rng.uniform() < spec.rate:
                off_amp = off_amp + spec.intensity * (on_amp - off_amp)
                record(spec.kind, 1)
        elif spec.kind == "switch_stuck_absorptive":
            if rng.uniform() < spec.rate:
                on_amp = on_amp + spec.intensity * (off_amp - on_amp)
                record(spec.kind, 1)
    return on_amp, off_amp


def apply_switch_reflection_faults(
    amplitude: float,
    reflect_amp: float,
    absorb_amp: float,
    specs: Sequence[FaultSpec],
    rng: np.random.Generator,
    record: RecordFn,
) -> float:
    """Corrupt a single behavioural-switch reflection amplitude."""
    for spec in specs:
        if spec.kind == "switch_stuck_reflective":
            if rng.uniform() < spec.rate:
                amplitude = amplitude + spec.intensity * (reflect_amp - amplitude)
                record(spec.kind, 1)
        elif spec.kind == "switch_stuck_absorptive":
            if rng.uniform() < spec.rate:
                amplitude = amplitude + spec.intensity * (absorb_amp - amplitude)
                record(spec.kind, 1)
    return amplitude


def link_session_dropped(
    direction: str,
    specs: Sequence[FaultSpec],
    rng: np.random.Generator,
    record: RecordFn,
) -> bool:
    """True when an armed ``link_drop`` spec kills this session."""
    dropped = False
    for spec in specs:
        if spec.kind == "link_drop":
            if rng.uniform() < spec.rate and not dropped:
                dropped = True
                record(spec.kind, 1)
    return dropped
