"""repro.faults — deterministic fault injection and resilience campaigns.

MilBack's clean pipeline assumes ideal hardware; this subsystem asks
what happens when it is not.  Three pieces:

* a **taxonomy** (:mod:`repro.faults.spec`): eleven registered fault
  kinds — chirp drop/truncation, interference bursts, clock skew,
  symbol jitter, ADC saturation and stuck bits, envelope-detector gain
  drift, SPDT switch stuck-reflective/absorptive, and link drops —
  each configured by a :class:`FaultSpec` (kind, rate, intensity);
* a **plan/hook layer** (:mod:`repro.faults.plan`): a
  :class:`FaultPlan` carries its own RNG stream (spawned per trial,
  the same discipline as :mod:`repro.parallel`) and activates via a
  context manager; hook functions at the existing pipeline seams are
  bitwise no-ops when no plan is active;
* a **campaign runner** (:mod:`repro.faults.campaign`, CLI
  ``repro faults``): sweeps fault rate through the parallel executor,
  emits degradation curves (localization error, BER, ARQ delivery
  ratio and mean attempts vs rate) and asserts resilience invariants.

Corruption may only enter library code through this package's public
API (lint rule ML010).  See ``docs/ROBUSTNESS.md``.

Quick use::

    from repro import faults

    plan = faults.FaultPlan([faults.FaultSpec("link_drop", rate=0.2)], rng=7)
    with faults.activate(plan):
        ...  # run the pipeline; sessions now drop 20% of the time
"""

from __future__ import annotations

from repro.faults.plan import (
    FaultPlan,
    activate,
    active_plan,
    adc_codes,
    adc_input,
    corrupt_burst,
    detector_output,
    link_drops,
    switch_reflection,
    switch_toggle_amplitudes,
)
from repro.faults.spec import (
    FAULT_KINDS,
    FaultKind,
    FaultSite,
    FaultSpec,
    fault_kind,
    parse_fault_specs,
)

__all__ = [
    # taxonomy
    "FaultSite",
    "FaultKind",  # milback: disable=ML014 — public fault-spec surface
    "FaultSpec",
    "FAULT_KINDS",
    "fault_kind",  # milback: disable=ML014 — public fault-spec surface
    "parse_fault_specs",
    # plan + activation
    "FaultPlan",
    "active_plan",
    "activate",
    # pipeline hooks
    "corrupt_burst",
    "adc_input",
    "adc_codes",
    "detector_output",
    "switch_toggle_amplitudes",
    "switch_reflection",
    "link_drops",
]
