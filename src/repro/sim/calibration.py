"""Calibration constants tying the simulator to the paper's testbed.

The physics (Friis, radar equation, FSA dispersion, kTB noise) fixes
every *slope* and *crossover* in the evaluation; what it cannot fix is a
handful of absolute offsets the paper never itemizes — cable losses,
mixer conversion loss, pointing error, residual self-interference. Those
are concentrated here, each with the measurement it was calibrated
against, so a reviewer can audit exactly where "fit to the paper" enters
the model. Nothing else in the package contains tuned constants.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Calibration", "default_calibration"]


@dataclass(frozen=True)
class Calibration:
    """All tuned constants in one auditable place.

    Attributes:
        downlink_implementation_loss_db: fixed one-way losses not modeled
            structurally (cables, connectors, pointing). Calibrated so
            the node-side SINR at 2 m is ≈25 dB, matching Fig. 14.
        uplink_implementation_loss_db: fixed two-way excess (RX cabling,
            polarization, pointing both ways) beyond the explicitly
            modeled mixer conversion loss and switch insertion loss.
            Calibrated so uplink SNR at 8 m / 10 Mbps is ≈15 dB — the
            paper's "BER 2e-8 at 8 m" operating point (Fig. 15a).
        uplink_sinr_cap_db: multiplicative noise ceiling (TX phase noise
            and residual self-interference that scale with the signal).
            Produces the short-range flattening of Fig. 15a: the
            measured-SNR convention (sep²/8σ²) reads ~6 dB below this
            value, putting the observed ceiling at ≈25 dB.
        backscatter_modulation_loss_db: OOK switching keeps the carrier
            on only half the time and spreads energy into harmonics;
            3.9 dB is the standard square-wave fundamental figure.
        ap_noise_figure_db: cascaded AP receive noise figure (LNA 3.3 dB
            plus post-LNA losses).
        node_detector_noise_v_per_rt_hz: envelope-detector output noise
            density; calibrated together with the responsivity so the
            2 m downlink SINR is ≈25 dB (Fig. 14).
        mirror_reflection_gain_db: strength of the FSA ground-plane
            mirror reflection relative to the node's modulated return
            when the geometry is specular; drives the −6°…−2° error bump
            in Fig. 13b.
        mirror_specular_center_deg / mirror_specular_width_deg: where the
            mirror reflection collides with the modulated return. The
            paper attributes the bump to the FSA structure's mirror
            image; its offset from 0° reflects the asymmetric feed.
        mirror_modulation_leakage: fraction of the mirror reflection that
            varies with node switching and therefore survives background
            subtraction (§9.3: "it will not be removed completely").
        fsa_gain_ripple_db: standard deviation of the slowly varying gain
            ripple across the band (fabrication tolerance + residual
            multipath standing waves). This, not receiver noise, is what
            dominates the paper's 1–3° orientation errors: it nudges the
            apparent beam-peak frequency. Drawn fresh per measurement run
            with correlation length ``fsa_ripple_correlation_hz``.
        trigger_jitter_s: RMS chirp-start timing jitter between the
            waveform generator and the scope (synchronized via a shared
            reference, §8); sub-picosecond for lab instruments.
        clutter_cancellation_db: how deeply the 5-chirp background
            subtraction suppresses static returns. TX phase noise,
            quantization and micro-motion leave a time-varying residual;
            40 dB is typical of instrument-grade FMCW. Because the
            node's signal falls as 1/d⁴ while the residual is fixed,
            this is what makes the Fig. 12a error grow with distance —
            the paper's own explanation ("the SNR of the signal
            degrades").
        cancellation_residual_bandwidth_hz: how fast the residual varies
            within a chirp, i.e. how far in beat frequency (range) the
            clutter residual smears.
        slope_error_sigma: fractional chirp-slope calibration error of
            the waveform generator, drawn per measurement run. A slope
            error ε maps a beat to a distance off by ε·d, which is why
            the paper's Fig. 12a error grows roughly linearly with
            distance (1 cm-class near, ~10 cm at 8 m).
        aoa_bias_sigma_deg: per-run AoA bias from RX-baseline/phase-center
            calibration; sets the Fig. 12b error floor (median ≈1.1°, p90 ≈2.5°).
        beat_capture_noise_dbm: aggregate per-sample noise power of the
            dechirped capture (scope quantization at high sample rates,
            TX phase-noise skirts, baseband spurs). This white floor —
            not kTB, which sits ~25 dB lower — is what the node's 1/d⁴
            return sinks into, and it is calibrated so the Fig. 12a
            ranging error grows from ~1 cm at 1 m to ~10 cm at 8 m.
        mirror_excess_path_m: extra one-way path of the ground-plane
            mirror image versus the direct return. The resulting beat
            offset keeps the mirror inside the orientation estimator's
            isolation mask while adding the interference ripple that
            skews the peak in the −6°…−2° window (Fig. 13b).
    """

    downlink_implementation_loss_db: float = 1.0
    uplink_implementation_loss_db: float = 4.0
    fsa_gain_ripple_db: float = 0.8
    fsa_ripple_correlation_hz: float = 150e6
    mirror_excess_path_m: float = 0.06
    trigger_jitter_s: float = 0.02e-12
    slope_error_sigma: float = 0.01
    aoa_bias_sigma_deg: float = 1.4
    beat_capture_noise_dbm: float = -73.0
    clutter_cancellation_db: float = 40.0
    cancellation_residual_bandwidth_hz: float = 300e3
    uplink_sinr_cap_db: float = 31.0
    backscatter_modulation_loss_db: float = 3.9
    ap_noise_figure_db: float = 5.0
    node_detector_noise_v_per_rt_hz: float = 213e-9
    mirror_reflection_gain_db: float = 9.0
    mirror_specular_center_deg: float = -5.0
    mirror_specular_width_deg: float = 1.8
    mirror_modulation_leakage: float = 0.35


def default_calibration() -> Calibration:
    """The constants used by every paper-reproduction experiment."""
    return Calibration()
