"""Link-budget engine: per-path, per-tone gains from scene geometry.

Every simulated waveform amplitude in the end-to-end engine comes from
here. The convention throughout the package: a signal sample's squared
magnitude is power in watts, so a path is applied by multiplying the
waveform with the *amplitude* gain returned by these methods.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.antennas.dual_port_fsa import DualPortFsa
from repro.antennas.fixed import HornAntenna
from repro.channel.atmosphere import AtmosphereModel
from repro.channel.propagation import (
    clutter_received_power_dbm,
    free_space_path_loss_db,
    propagation_delay_s,
)
from repro.channel.scene import Scene2D
from repro.constants import AP_HORN_GAIN_DBI, AP_TX_POWER_DBM
from repro.hardware.switch import SpdtSwitch
from repro.sim.calibration import Calibration, default_calibration
from repro.utils.units import dbm_to_watts

__all__ = ["PathGain", "LinkBudget"]


@dataclass(frozen=True)
class PathGain:
    """One resolved path: power gain [dB] relative to TX power, delay, and
    the one-way distance that produced it."""

    gain_db: float
    delay_s: float
    distance_m: float
    label: str = "path"

    @property
    def amplitude(self) -> float:
        """Field (amplitude) gain."""
        return 10.0 ** (self.gain_db / 20.0)


@dataclass
class LinkBudget:
    """Computes every path gain the simulator needs for one scene.

    The AP's horns are assumed steered at the node (the paper steers
    mechanically until the beams face the node); clutter is illuminated
    and received through the horn pattern at its own azimuth offset.
    """

    scene: Scene2D
    fsa: DualPortFsa = field(default_factory=DualPortFsa)
    tx_horn: HornAntenna = field(default_factory=lambda: HornAntenna(AP_HORN_GAIN_DBI))
    rx_horn: HornAntenna = field(default_factory=lambda: HornAntenna(AP_HORN_GAIN_DBI))
    switch: SpdtSwitch = field(default_factory=SpdtSwitch)
    calibration: Calibration = field(default_factory=default_calibration)
    tx_power_dbm: float = AP_TX_POWER_DBM
    node_id: str | None = None
    #: Weather condition; None means indoor (no atmospheric loss).
    atmosphere: AtmosphereModel | None = None

    # --- geometry shortcuts ---------------------------------------------------

    def node_distance_m(self) -> float:
        """AP↔node range."""
        return self.scene.node_distance_m(self.node_id)

    def node_orientation_deg(self) -> float:
        """Node FSA broadside angle away from facing the AP."""
        return self.scene.node_orientation_deg(self.node_id)

    def node_azimuth_deg(self) -> float:
        """Node azimuth off the AP boresight (0 once the AP steers)."""
        return self.scene.node_azimuth_deg(self.node_id)

    def tx_power_w(self) -> float:
        """AP transmit power [W]."""
        return float(dbm_to_watts(self.tx_power_dbm))

    # --- downlink (AP → node port) ---------------------------------------------

    def downlink_port_gain_db(self, port: str, frequency_hz: float) -> float:
        """One-way power gain from the AP TX output into one FSA port's
        detector branch, at ``frequency_hz``.

        horn(steered at node) + FSA port gain at the node's orientation
        − FSPL − switch insertion − implementation loss.
        """
        d = self.node_distance_m()
        orientation = self.node_orientation_deg()
        fspl = float(free_space_path_loss_db(d, frequency_hz))
        fsa_gain = float(self.fsa.gain_dbi(port, orientation, frequency_hz))
        switch_db = -20.0 * math.log10(self.switch.through_amplitude())
        atmo_db = (
            self.atmosphere.one_way_loss_db(d, frequency_hz)
            if self.atmosphere is not None
            else 0.0
        )
        return (
            self.tx_horn.peak_gain_dbi
            + fsa_gain
            - fspl
            - switch_db
            - atmo_db
            - self.calibration.downlink_implementation_loss_db
        )

    def downlink_path(self, port: str, frequency_hz: float) -> PathGain:
        """Downlink gain packaged with the propagation delay."""
        d = self.node_distance_m()
        return PathGain(
            gain_db=self.downlink_port_gain_db(port, frequency_hz),
            delay_s=propagation_delay_s(d),
            distance_m=d,
            label=f"downlink-port-{port}",
        )

    # --- uplink / backscatter (AP → node → AP) -----------------------------------

    def backscatter_gain_db(
        self,
        port: str,
        frequency_hz: float,
        include_modulation_loss: bool = True,
    ) -> float:
        """Two-way power gain of the node's reflected tone, from AP TX
        output to AP RX antenna output (before the LNA).

        The FSA gain enters twice (capture + re-radiation); the switch's
        reflective insertion loss is inside
        :meth:`SpdtSwitch.reflection_amplitude`.
        """
        d = self.node_distance_m()
        orientation = self.node_orientation_deg()
        fspl = float(free_space_path_loss_db(d, frequency_hz))
        fsa_gain = float(self.fsa.gain_dbi(port, orientation, frequency_hz))
        # Reflect-state loss: the shorted port reflects fully minus two
        # passes through the switch.
        reflect_db = 2.0 * self.switch.insertion_loss_db
        modulation_db = (
            self.calibration.backscatter_modulation_loss_db
            if include_modulation_loss
            else 0.0
        )
        atmo_db = (
            2.0 * self.atmosphere.one_way_loss_db(d, frequency_hz)
            if self.atmosphere is not None
            else 0.0
        )
        return (
            self.tx_horn.peak_gain_dbi
            + 2.0 * fsa_gain
            + self.rx_horn.peak_gain_dbi
            - 2.0 * fspl
            - reflect_db
            - modulation_db
            - atmo_db
            - self.calibration.uplink_implementation_loss_db
        )

    def backscatter_path(self, port: str, frequency_hz: float) -> PathGain:
        """Backscatter gain packaged with the round-trip delay."""
        d = self.node_distance_m()
        return PathGain(
            gain_db=self.backscatter_gain_db(port, frequency_hz),
            delay_s=2.0 * propagation_delay_s(d),
            distance_m=d,
            label=f"backscatter-port-{port}",
        )

    # --- clutter and self-interference -------------------------------------------

    def clutter_paths(
        self,
        frequency_hz: float,
        pointing_azimuth_deg: float | None = None,
    ) -> list[PathGain]:
        """Radar-equation returns from every scene reflector, through the
        horn pattern at each reflector's azimuth offset from where the
        horns point (the node by default, or an explicit scan direction
        during discovery)."""
        if pointing_azimuth_deg is None:
            pointing_azimuth_deg = self.node_azimuth_deg() if self.scene.nodes else 0.0
        paths = []
        for reflector, distance, azimuth in self.scene.clutter_geometry():
            offset = azimuth - pointing_azimuth_deg
            tx_gain = float(self.tx_horn.gain_dbi(offset, frequency_hz))
            rx_gain = float(self.rx_horn.gain_dbi(offset, frequency_hz))
            power_dbm = clutter_received_power_dbm(
                self.tx_power_dbm,
                tx_gain,
                rx_gain,
                distance,
                frequency_hz,
                reflector.rcs_dbsm,
            )
            paths.append(
                PathGain(
                    gain_db=power_dbm - self.tx_power_dbm,
                    delay_s=2.0 * propagation_delay_s(distance),
                    distance_m=distance,
                    label=f"clutter-{reflector.name}",
                )
            )
        return paths

    def self_interference_path(self, isolation_db: float = 70.0) -> PathGain:
        """Direct TX→RX leakage at the AP (constant, near-zero delay).

        Separate, highly directional TX/RX horns with absorber between
        them give ~70 dB of isolation at mmWave.
        """
        return PathGain(
            gain_db=-isolation_db,
            delay_s=1.0e-9,
            distance_m=0.3,
            label="self-interference",
        )

    # --- mirror reflection (Fig. 13b artifact) ------------------------------------

    def mirror_reflection_gain_db(self, frequency_hz: float) -> float:
        """Two-way gain of the FSA ground plane's specular mirror image.

        Strong only when the node's orientation sits in the specular
        window around ``mirror_specular_center_deg``; modeled relative to
        the node's own backscatter strength.
        """
        cal = self.calibration
        orientation = self.node_orientation_deg()
        offset = orientation - cal.mirror_specular_center_deg
        window = math.exp(-0.5 * (offset / cal.mirror_specular_width_deg) ** 2)
        base = self.backscatter_gain_db("A", frequency_hz, include_modulation_loss=False)
        return base + cal.mirror_reflection_gain_db + 10.0 * math.log10(max(window, 1e-12))
