"""End-to-end MilBack simulator: AP ↔ channel ↔ node.

The engine synthesizes exactly the observables each receiver in the real
testbed digitizes — dechirped beat records at the AP's scope, envelope
voltages at the node's MCU, post-mixer baseband at the AP's uplink
branches — from the scene geometry, the antenna models and the link
budget, then runs the same estimation/demodulation code a deployment
would. RF-rate waveforms are never materialized: each receiver's
observable has an exact complex-baseband or envelope-domain form (see
the per-method notes), which is what keeps full evaluation sweeps at
laptop scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy.signal import lfilter

from repro import faults, obs
from repro.antennas.dual_port_fsa import TonePair
from repro.antennas.fsa import FsaPort
from repro.ap.access_point import AccessPoint
from repro.channel.propagation import propagation_delay_s
from repro.channel.scene import Scene2D
from repro.constants import SPEED_OF_LIGHT
from repro.dsp.envelope import two_tone_mean_envelope
from repro.dsp.noise import thermal_noise_power_w
from repro.dsp.signal import Signal
from repro.errors import ConfigurationError, LocalizationError
from repro.kernels import burst as burst_kernel
from repro.node.node import BackscatterNode
from repro.phy.ber import measure_ber
from repro.sim import cache as simcache
from repro.sim.calibration import Calibration, default_calibration
from repro.sim.linkbudget import LinkBudget
from repro.utils.rng import RngLike, make_rng

__all__ = [
    "LocalizationResult",
    "ApOrientationResult",
    "BurstObservables",
    "NodeOrientationResult",
    "DownlinkResult",
    "UplinkResult",
    "MilBackSimulator",
]


# --- result records ----------------------------------------------------------------


@dataclass(frozen=True)
class LocalizationResult:
    """One ranging + AoA measurement against ground truth."""

    distance_est_m: float
    distance_true_m: float
    angle_est_deg: float
    angle_true_deg: float
    beat_frequency_hz: float

    @property
    def distance_error_m(self) -> float:
        return self.distance_est_m - self.distance_true_m

    @property
    def angle_error_deg(self) -> float:
        return self.angle_est_deg - self.angle_true_deg


@dataclass(frozen=True)
class BurstObservables:
    """Everything one Field-2 burst exposes to a downstream consumer.

    The dataset factory's unit of observation: the raw dechirped burst
    (for feature extraction), link-budget port powers and mean envelope
    magnitudes (classical signal-strength features), and the classical
    localization estimate when one was possible — ``None`` when the
    estimator found no usable peak (heavy faults, deep NLOS), which is
    itself a label worth keeping.
    """

    #: Dechirped burst, shape ``(n_chirps, n_rx, n_samples)`` complex128.
    samples: np.ndarray
    sample_rate_hz: float
    #: Received backscatter power per FSA port (A, B), dBm at the AP.
    port_power_dbm: tuple[float, float]
    #: Mean envelope magnitude per RX antenna, volts.
    envelope_mean_v: tuple[float, ...]
    localization: LocalizationResult | None


@dataclass(frozen=True)
class ApOrientationResult:
    """AP-side orientation estimate against ground truth."""

    orientation_est_deg: float
    orientation_true_deg: float
    peak_frequency_hz: float

    @property
    def error_deg(self) -> float:
        return self.orientation_est_deg - self.orientation_true_deg


@dataclass(frozen=True)
class NodeOrientationResult:
    """Node-side orientation estimate against ground truth."""

    orientation_est_deg: float
    orientation_true_deg: float
    orientation_a_deg: float
    orientation_b_deg: float

    @property
    def error_deg(self) -> float:
        return self.orientation_est_deg - self.orientation_true_deg


@dataclass(frozen=True)
class DownlinkResult:
    """One downlink burst: bits, BER and per-port SINR."""

    tx_bits: np.ndarray
    rx_bits: np.ndarray
    ber: float
    sinr_a_db: float
    sinr_b_db: float
    used_ook_fallback: bool
    pair: TonePair
    detector_a: Signal | None = None
    detector_b: Signal | None = None

    @property
    def sinr_db(self) -> float:
        values = [v for v in (self.sinr_a_db, self.sinr_b_db) if not math.isnan(v)]
        return min(values) if values else float("nan")


@dataclass(frozen=True)
class UplinkResult:
    """One uplink burst: bits, BER and per-branch SNR."""

    tx_bits: np.ndarray
    rx_bits: np.ndarray
    ber: float
    snr_a_db: float
    snr_b_db: float
    pair: TonePair

    @property
    def snr_db(self) -> float:
        values = [v for v in (self.snr_a_db, self.snr_b_db) if not math.isnan(v)]
        return min(values) if values else float("nan")


# --- the engine ----------------------------------------------------------------------


class MilBackSimulator:
    """Simulates every MilBack interaction for one scene."""

    def __init__(
        self,
        scene: Scene2D,
        node: BackscatterNode | None = None,
        ap: AccessPoint | None = None,
        calibration: Calibration | None = None,
        seed: RngLike = None,
        node_id: str | None = None,
        atmosphere=None,
    ) -> None:
        self.scene = scene
        self.calibration = calibration or default_calibration()
        if node is None:
            # The default node takes its detector noise_v_per_rt_hz density from the
            # calibration, so the knob actually drives the simulation.
            from repro.hardware.envelope_detector import EnvelopeDetector
            from repro.node.config import NodeConfig

            noise_v_per_rt_hz = self.calibration.node_detector_noise_v_per_rt_hz
            node = BackscatterNode(
                NodeConfig(
                    detector_a=EnvelopeDetector(output_noise_v_per_rt_hz=noise_v_per_rt_hz),
                    detector_b=EnvelopeDetector(output_noise_v_per_rt_hz=noise_v_per_rt_hz),
                )
            )
        self.node = node
        self.ap = ap or AccessPoint(node_fsa=self.node.fsa)
        self.rng = make_rng(seed)
        self.node_id = node_id
        cal = calibration or default_calibration()
        # Per-run instrument systematics (constant within one measurement
        # run, fresh across runs): generator slope miscalibration and RX
        # baseline phase-center offset.
        self._slope_error = float(self.rng.normal(0.0, cal.slope_error_sigma))
        self._aoa_bias_deg = float(self.rng.normal(0.0, cal.aoa_bias_sigma_deg))
        # Per-instance memos for quantities that mix the instance's own
        # ripple realization with scene-invariant terms; keyed by
        # (kind, port, grid key). The cross-instance RNG-free pieces live
        # in repro.sim.cache.
        self._ripple_interp: dict[tuple, np.ndarray] = {}
        self._amplitude_memo: dict[tuple, np.ndarray] = {}
        self.budget = LinkBudget(
            scene=scene,
            fsa=self.node.fsa,
            tx_horn=self.ap.config.tx_horn,
            rx_horn=self.ap.config.rx_horn,
            switch=self.node.config.switch_a,
            calibration=self.calibration,
            tx_power_dbm=self.ap.config.tx_power_dbm,
            node_id=node_id,
            atmosphere=atmosphere,
        )

    # --- FSA gain ripple ------------------------------------------------------------

    def _gain_ripple_db(
        self,
        port: str,
        freqs_hz: np.ndarray,
        grid_key: tuple | None = None,
    ) -> np.ndarray:
        """Slowly varying random gain ripple across the band for one port.

        Drawn once per simulator instance (one physical measurement run):
        Gaussian control points every ``fsa_ripple_correlation_hz``,
        linearly interpolated. Models fabrication tolerance and residual
        multipath standing waves — the error floor of the paper's
        orientation experiments.

        The control points come from the trial RNG, so they can never be
        shared across instances — but the interpolation onto a named
        frequency grid is memoized per ``(port, grid_key)`` within this
        instance (the grid never changes between bursts of one run).
        """
        cal = self.calibration
        if cal.fsa_gain_ripple_db <= 0:
            return np.zeros_like(np.asarray(freqs_hz, dtype=float))
        if grid_key is not None:
            cached = self._ripple_interp.get((port, grid_key))
            if cached is not None:
                return cached
        if not hasattr(self, "_ripple_tables"):
            self._ripple_tables = {}
        if port not in self._ripple_tables:
            lo, hi = self.node.fsa.band_hz
            span = hi - lo
            n_ctrl = max(int(span / cal.fsa_ripple_correlation_hz) + 2, 4)
            ctrl_f = np.linspace(lo - 0.05 * span, hi + 0.05 * span, n_ctrl)
            ctrl_v = cal.fsa_gain_ripple_db * self.rng.standard_normal(n_ctrl)
            self._ripple_tables[port] = (ctrl_f, ctrl_v)
        ctrl_f, ctrl_v = self._ripple_tables[port]
        ripple = np.interp(np.asarray(freqs_hz, dtype=float), ctrl_f, ctrl_v)
        if grid_key is not None:
            ripple = simcache.frozen_array(ripple)
            self._ripple_interp[(port, grid_key)] = ripple
        return ripple

    # --- vectorized budget helpers ------------------------------------------------

    def _backscatter_amplitude(
        self,
        port: str,
        freqs_hz: np.ndarray,
        grid: simcache.ChirpGrid | None = None,
    ) -> np.ndarray:
        """Field gain of the node's reflection across frequencies.

        Frequency-resolved version of
        :meth:`LinkBudget.backscatter_gain_db` (the FSA gain sweeps with
        the chirp, everything else is flat across the band). With a
        ``grid``, the flat budget scalar and FSA sweep come from the
        scene-invariant caches and the full array is memoized for this
        instance.
        """
        if grid is not None:
            cached = self._amplitude_memo.get(("backscatter", port, grid.key))
            if cached is not None:
                return cached
            flat_db = simcache.backscatter_gain_db(self.budget, port, grid.mean_hz)
            fsa_flat = float(
                self.node.fsa.gain_dbi(
                    port, self.budget.node_orientation_deg(), grid.mean_hz
                )
            )
            fsa_sweep = simcache.fsa_gain_sweep(
                self.node.fsa, port, self.budget.node_orientation_deg(), grid
            )
            ripple = self._gain_ripple_db(port, grid.f_inst, grid_key=grid.key)
            gain_db = flat_db + 2.0 * (fsa_sweep - fsa_flat) + 2.0 * ripple
            amplitude = simcache.frozen_array(np.power(10.0, gain_db / 20.0))
            self._amplitude_memo[("backscatter", port, grid.key)] = amplitude
            return amplitude
        flat_db = self.budget.backscatter_gain_db(port, float(np.mean(freqs_hz)))
        fsa_flat = float(
            self.node.fsa.gain_dbi(
                port, self.budget.node_orientation_deg(), float(np.mean(freqs_hz))
            )
        )
        fsa_sweep = np.asarray(
            self.node.fsa.gain_dbi(port, self.budget.node_orientation_deg(), freqs_hz),
            dtype=float,
        )
        gain_db = flat_db + 2.0 * (fsa_sweep - fsa_flat)
        gain_db = gain_db + 2.0 * self._gain_ripple_db(port, freqs_hz)
        return np.power(10.0, gain_db / 20.0)

    def _downlink_amplitude(
        self,
        port: str,
        freqs_hz: np.ndarray,
        grid: simcache.ChirpGrid | None = None,
    ) -> np.ndarray:
        """Field gain into one FSA port's detector across frequencies."""
        if grid is not None:
            cached = self._amplitude_memo.get(("downlink", port, grid.key))
            if cached is not None:
                return cached
            flat_db = simcache.downlink_port_gain_db(self.budget, port, grid.mean_hz)
            fsa_flat = float(
                self.node.fsa.gain_dbi(
                    port, self.budget.node_orientation_deg(), grid.mean_hz
                )
            )
            fsa_sweep = simcache.fsa_gain_sweep(
                self.node.fsa, port, self.budget.node_orientation_deg(), grid
            )
            ripple = self._gain_ripple_db(port, grid.f_inst, grid_key=grid.key)
            gain_db = flat_db + (fsa_sweep - fsa_flat) + ripple
            amplitude = simcache.frozen_array(np.power(10.0, gain_db / 20.0))
            self._amplitude_memo[("downlink", port, grid.key)] = amplitude
            return amplitude
        flat_db = self.budget.downlink_port_gain_db(port, float(np.mean(freqs_hz)))
        fsa_flat = float(
            self.node.fsa.gain_dbi(
                port, self.budget.node_orientation_deg(), float(np.mean(freqs_hz))
            )
        )
        fsa_sweep = np.asarray(
            self.node.fsa.gain_dbi(port, self.budget.node_orientation_deg(), freqs_hz),
            dtype=float,
        )
        gain_db = flat_db + (fsa_sweep - fsa_flat)
        gain_db = gain_db + self._gain_ripple_db(port, freqs_hz)
        return np.power(10.0, gain_db / 20.0)

    # --- FMCW beat-record synthesis -------------------------------------------------

    @obs.traced("engine.beat_records")
    def _beat_records(
        self,
        toggled_port: str = "both",
        n_chirps: int | None = None,
        steer_azimuth_deg: float | None = None,
        radial_velocity_mps: float = 0.0,
        n_rx_antennas: int = 2,
    ) -> tuple[list[Signal], ...]:
        """Synthesize the dechirped (beat) records both RX chains capture.

        Stretch processing turns a reflector with round-trip delay τ into
        a tone at slope_hz_per_s·τ with phase 2π·f₀·τ; the node's contribution is
        additionally amplitude-shaped by its FSA gain at the chirp's
        instantaneous frequency, and gated by its per-chirp toggle state.
        Synthesizing this closed form at the beat sample rate is exact —
        it is what the scope would record after the AP's mixer.

        ``steer_azimuth_deg`` points the AP's horns away from the node
        (used by discovery scans); the node's return then pays the horn
        roll-off twice and the clutter picture shifts accordingly.
        ``n_rx_antennas`` generalizes the AP's two-horn receiver to a
        uniform linear array at the same baseline_m spacing (the phased-
        array upgrade §9.2 points at); the return is one record list per
        antenna.
        """
        cfg = self.ap.config
        chirp = cfg.ranging_chirp
        n_chirps = n_chirps or cfg.n_ranging_chirps
        obs.counter("engine.chirps.synthesized").inc(n_chirps)
        fs_hz = cfg.beat_sample_rate_hz
        # Scene-invariant pieces (time grid, static clutter field, FSA
        # amplitude sweep) come from repro.sim.cache — computed once per
        # scene configuration, reused by every chirp of every trial.
        grid = simcache.chirp_grid(chirp, fs_hz)
        n = grid.n
        t = grid.t
        slope_hz_per_s = chirp.slope_hz_per_s
        lam = SPEED_OF_LIGHT / chirp.center_hz
        baseline_m = cfg.rx_baseline_m
        sqrt_ptx = math.sqrt(self.budget.tx_power_w())

        if n_rx_antennas < 1:
            raise ConfigurationError("need at least one RX antenna")
        # Static paths: clutter + self-interference (identical every chirp).
        node_azimuth = self.budget.node_azimuth_deg()
        pointing = node_azimuth if steer_azimuth_deg is None else steer_azimuth_deg
        # Horn roll-off on the node's two-way path when the scan is not
        # pointed at it (0 dB when steered at the node).
        steer_offset = pointing - node_azimuth
        horn_rolloff_db = (
            float(self.ap.config.tx_horn.gain_dbi(steer_offset, chirp.center_hz))
            - self.ap.config.tx_horn.peak_gain_dbi
            + float(self.ap.config.rx_horn.gain_dbi(steer_offset, chirp.center_hz))
            - self.ap.config.rx_horn.peak_gain_dbi
        )
        steer_factor = 10.0 ** (horn_rolloff_db / 20.0)
        static = simcache.static_beat_field(
            self.budget,
            grid,
            pointing,
            n_rx_antennas,
            baseline_m,
            self._path_azimuth,
        )

        # Node path: FSA-shaped amplitude, toggled per chirp.
        ports = {"both": (FsaPort.A, FsaPort.B), "A": (FsaPort.A,), "B": (FsaPort.B,)}
        if toggled_port not in ports:
            raise ConfigurationError("toggled_port must be 'both', 'A' or 'B'")
        node_delay = 2.0 * propagation_delay_s(self.budget.node_distance_m())
        node_beat = slope_hz_per_s * node_delay
        node_phase0 = 2.0 * math.pi * chirp.start_hz * node_delay
        node_rx2_phase = (
            2.0 * math.pi * baseline_m * math.sin(math.radians(node_azimuth)) / lam
        )
        node_tone = np.exp(1j * (2.0 * math.pi * node_beat * t + node_phase0))
        node_shape = np.zeros(n, dtype=np.complex128)
        for port in ports[toggled_port]:
            node_shape += self._backscatter_amplitude(port, grid.f_inst, grid=grid) * node_tone
        node_shape *= sqrt_ptx * steer_factor

        # Mirror-image reflection of the FSA ground plane (Fig. 13b
        # artifact): co-located with the node, flat across the sweep,
        # only partially modulated by the switching.
        mirror_db = self.budget.mirror_reflection_gain_db(chirp.center_hz)
        mirror_amp = sqrt_ptx * steer_factor * 10.0 ** (mirror_db / 20.0)
        mirror_phase = self.rng.uniform(0.0, 2.0 * math.pi)
        mirror_delay = node_delay + 2.0 * self.calibration.mirror_excess_path_m / SPEED_OF_LIGHT
        mirror_beat = slope_hz_per_s * mirror_delay
        mirror_tone = np.exp(
            1j * (2.0 * math.pi * mirror_beat * t
                  + 2.0 * math.pi * chirp.start_hz * mirror_delay)
        )
        mirror_shape = mirror_amp * mirror_tone * np.exp(1j * mirror_phase)

        # Per-chirp toggle factors: reflect on even chirps, absorb on odd.
        # The backscatter budget already includes the reflect-state loss,
        # so the "on" factor is unity and the "off" factor is the extra
        # suppression the absorb state adds (isolation vs short).
        sw = self.node.config.switch_a
        on_amp = 1.0  # backscatter gain already includes the reflect loss
        off_amp = 10.0 ** (-(sw.isolation_db - 2.0 * sw.insertion_loss_db) / 20.0)
        # Switch-stuck faults blend the toggle contrast; a bitwise no-op
        # when no plan is active (docs/ROBUSTNESS.md).
        on_amp, off_amp = faults.switch_toggle_amplitudes(on_amp, off_amp)
        leak = self.calibration.mirror_modulation_leakage

        noise_power = thermal_noise_power_w(
            fs_hz, self.calibration.ap_noise_figure_db
        ) + 1e-3 * 10.0 ** (self.calibration.beat_capture_noise_dbm / 10.0)
        # Chirp-to-chirp Doppler rotation of a moving node:
        # phi_k = 4*pi*v*t_k/lambda (intra-chirp drift is negligible at
        # indoor speeds).
        doppler_step = (
            4.0 * math.pi * radial_velocity_mps * cfg.chirp_repetition_interval_s
            / (SPEED_OF_LIGHT / chirp.center_hz)
        )
        # Assemble the whole burst through the kernel layer: variates are
        # pre-drawn in the exact legacy order (per chirp: trigger jitter,
        # cancellation residual, then per-antenna noise), then every
        # record comes out of one (n_chirps, n_rx, n) computation —
        # bitwise identical between the batched and reference modes.
        params = burst_kernel.BurstParams(
            static=np.stack(static),
            node_shape=node_shape,
            mirror_shape=mirror_shape,
            t=t,
            slope_hz_per_s=slope_hz_per_s,
            start_hz=chirp.start_hz,
            on_amp=on_amp,
            off_amp=off_amp,
            mirror_leak=leak,
            rx_phase_step_rad=node_rx2_phase,
            doppler_step_rad=doppler_step,
            noise_sigma=math.sqrt(noise_power / 2.0),
        )
        variates = burst_kernel.draw_variates(
            self.rng,
            n_chirps,
            n_rx_antennas,
            n,
            self.calibration.trigger_jitter_s,
            lambda: self._cancellation_residual(n, fs_hz),
        )
        samples = burst_kernel.synthesize_burst(params, variates)
        samples = faults.corrupt_burst(samples)
        records = tuple([] for _ in range(n_rx_antennas))
        for k in range(n_chirps):
            for m in range(n_rx_antennas):
                records[m].append(
                    Signal(
                        samples[k, m],
                        fs_hz,
                        0.0,
                        k * cfg.chirp_repetition_interval_s,
                    )
                )
        return records

    def _cancellation_residual(self, n: int, fs: float) -> np.ndarray:
        """Per-chirp multiplicative residual on the static paths.

        Background subtraction cancels static clutter only down to a
        floor (TX phase noise, quantization, micro-motion). The residual
        is modeled as band-limited complex noise — fresh each chirp, so
        pairwise subtraction leaves ~``clutter_cancellation_db`` of
        suppression, smeared over the residual bandwidth in beat
        frequency (i.e. range).
        """
        cal = self.calibration
        sigma = 10.0 ** (-cal.clutter_cancellation_db / 20.0)
        if sigma <= 0:
            return np.zeros(n, dtype=np.complex128)
        white = self.rng.standard_normal(n) + 1j * self.rng.standard_normal(n)
        alpha = 1.0 - math.exp(
            -2.0 * math.pi * cal.cancellation_residual_bandwidth_hz / fs
        )
        smooth = lfilter([alpha], [1.0, -(1.0 - alpha)], white)
        rms = float(np.sqrt(np.mean(np.abs(smooth) ** 2)))
        if rms <= 0:
            return np.zeros(n, dtype=np.complex128)
        return (sigma / rms) * smooth

    def _path_azimuth(self, label: str) -> float:
        """World azimuth (off AP boresight) of a named path's source."""
        for reflector, _distance, azimuth in self.scene.clutter_geometry():
            if label == f"clutter-{reflector.name}":
                return azimuth
        return 0.0  # self-interference: on-axis

    @obs.traced("engine.probe_direction", count="engine.probe_direction.trials")
    def probe_direction(
        self, steer_azimuth_deg: float, n_chirps: int = 11
    ) -> tuple[float, float, float]:
        """One discovery probe: steer the horns, transmit a Field-2 burst,
        and report ``(peak magnitude, estimated distance, coherence)``.

        Coherence is the discriminator between a node and a clutter
        residual: the node toggles deterministically once per chirp, so
        its pair differences add *coherently* under alternating signs
        (ratio → 1), while cancellation residue is random chirp to chirp
        (ratio → ~1/√n_pairs). Discovery probes use a longer burst than
        Field 2 (default 11 chirps → 10 pairs) so the statistic separates
        cleanly.
        """
        records, _ = self._beat_records(
            toggled_port="both",
            n_chirps=n_chirps,
            steer_azimuth_deg=steer_azimuth_deg,
        )
        estimate = self.ap.fmcw.estimate_range(records)
        spectra = self.ap.fmcw.chirp_spectra(records)
        values = np.array(
            [s.value_at(estimate.beat_frequency_hz) for s in spectra]
        )
        diffs = values[:-1] - values[1:]
        signs = np.array([(-1.0) ** k for k in range(diffs.size)])
        denominator = float(np.sum(np.abs(diffs)))
        coherence = (
            float(np.abs(np.sum(signs * diffs))) / denominator
            if denominator > 0
            else 0.0
        )
        return estimate.peak_magnitude, estimate.distance_m, coherence

    # --- localization (paper §5.1, Fig. 12) --------------------------------------------

    @obs.traced("engine.localization", count="engine.localization.trials")
    def simulate_localization(self) -> LocalizationResult:
        """FMCW ranging + two-antenna AoA, one full Field-2 burst."""
        records_rx1, records_rx2 = self._beat_records(toggled_port="both")
        estimate = self.ap.fmcw.estimate_range(records_rx1)
        aoa = self.ap.aoa.estimate(records_rx1, records_rx2, estimate.beat_frequency_hz)
        # The processor divides by the *assumed* slope; a generator slope
        # off by ε yields a distance off by ε·d. Likewise the AoA carries
        # the run's baseline-calibration bias.
        distance = estimate.distance_m * (1.0 + self._slope_error)
        return LocalizationResult(
            distance_est_m=distance,
            distance_true_m=self.budget.node_distance_m(),
            angle_est_deg=aoa.angle_deg + self._aoa_bias_deg,
            angle_true_deg=self.budget.node_azimuth_deg(),
            beat_frequency_hz=estimate.beat_frequency_hz,
        )

    @obs.traced("engine.observe", count="engine.observe.trials")
    def observe_burst(self, radial_velocity_mps: float = 0.0) -> BurstObservables:
        """One Field-2 burst, returned as raw observables plus estimates.

        The dataset-factory entry point: unlike
        :meth:`simulate_localization` it keeps the dechirped samples
        (feature extraction happens downstream, batched across rows)
        and degrades gracefully — a burst the classical estimator
        cannot localize still yields a row, with
        ``localization=None`` and ``engine.observe.failed`` bumped.
        """
        records = self._beat_records(
            toggled_port="both", radial_velocity_mps=radial_velocity_mps
        )
        # (n_chirps, n_rx, n) — the same layout the burst kernel produces.
        samples = np.stack(
            [np.stack([rec.samples for rec in per_antenna]) for per_antenna in records],
            axis=1,
        )
        chirp = self.ap.config.ranging_chirp
        port_power_dbm = (
            self.budget.tx_power_dbm
            + simcache.backscatter_gain_db(self.budget, FsaPort.A, chirp.center_hz),
            self.budget.tx_power_dbm
            + simcache.backscatter_gain_db(self.budget, FsaPort.B, chirp.center_hz),
        )
        envelope_mean_v = tuple(
            float(np.mean(np.abs(samples[:, m, :]))) for m in range(samples.shape[1])
        )
        localization: LocalizationResult | None
        try:
            estimate = self.ap.fmcw.estimate_range(records[0])
            aoa = self.ap.aoa.estimate(records[0], records[1], estimate.beat_frequency_hz)
            localization = LocalizationResult(
                distance_est_m=estimate.distance_m * (1.0 + self._slope_error),
                distance_true_m=self.budget.node_distance_m(),
                angle_est_deg=aoa.angle_deg + self._aoa_bias_deg,
                angle_true_deg=self.budget.node_azimuth_deg(),
                beat_frequency_hz=estimate.beat_frequency_hz,
            )
        except LocalizationError:
            obs.counter("engine.observe.failed").inc()
            localization = None
        return BurstObservables(
            samples=samples,
            sample_rate_hz=self.ap.config.beat_sample_rate_hz,
            port_power_dbm=port_power_dbm,
            envelope_mean_v=envelope_mean_v,
            localization=localization,
        )

    @obs.traced("engine.velocity", count="engine.velocity.trials")
    def simulate_velocity(
        self,
        radial_velocity_mps: float,
        n_chirps: int = 9,
    ):
        """Range + radial velocity from one extended chirp burst.

        The ISAC extension: the same burst that ranges the node also
        yields its radial speed from chirp-to-chirp phase, after undoing
        the node's deliberate toggle (see :mod:`repro.ap.doppler`).
        Returns ``(RangeEstimate, VelocityEstimate)``.
        """
        from repro.ap.doppler import DopplerEstimator

        records, _ = self._beat_records(
            toggled_port="both",
            n_chirps=n_chirps,
            radial_velocity_mps=radial_velocity_mps,
        )
        estimate = self.ap.fmcw.estimate_range(records)
        doppler = DopplerEstimator(
            self.ap.config.chirp_repetition_interval_s,
            self.ap.config.ranging_chirp.center_hz,
        )
        velocity = doppler.estimate(records, estimate.beat_frequency_hz)
        return estimate, velocity

    @obs.traced("engine.localization_array", count="engine.localization_array.trials")
    def simulate_localization_array(
        self,
        n_antennas: int = 8,
        method: str = "music",
        n_chirps: int | None = None,
    ) -> LocalizationResult:
        """Localization with an N-antenna RX array (the §9.2 upgrade).

        Ranging is unchanged; the AoA comes from Bartlett/MUSIC over the
        per-antenna node snapshots instead of two-antenna phase
        comparison.
        """
        from repro.ap.music import ArrayAoaEstimator

        records = self._beat_records(
            toggled_port="both", n_chirps=n_chirps, n_rx_antennas=n_antennas
        )
        estimate = self.ap.fmcw.estimate_range(records[0])
        estimator = ArrayAoaEstimator(
            n_antennas,
            self.ap.config.rx_baseline_m,
            self.ap.config.ranging_chirp.center_hz,
        )
        aoa = estimator.estimate(records, estimate.beat_frequency_hz, method)
        distance = estimate.distance_m * (1.0 + self._slope_error)
        return LocalizationResult(
            distance_est_m=distance,
            distance_true_m=self.budget.node_distance_m(),
            angle_est_deg=aoa.angle_deg + self._aoa_bias_deg,
            angle_true_deg=self.budget.node_azimuth_deg(),
            beat_frequency_hz=estimate.beat_frequency_hz,
        )

    # --- AP-side orientation (paper §5.2a, Fig. 13b) -----------------------------------

    @obs.traced("engine.ap_orientation", count="engine.ap_orientation.trials")
    def simulate_ap_orientation(self) -> ApOrientationResult:
        """One port toggles, the AP reads orientation off the reflection
        spectrum."""
        records_rx1, _ = self._beat_records(toggled_port="A")
        estimate = self.ap.fmcw.estimate_range(records_rx1)
        orientation = self.ap.orientation.estimate(
            records_rx1, estimate.beat_frequency_hz
        )
        return ApOrientationResult(
            orientation_est_deg=orientation.orientation_deg,
            orientation_true_deg=self.budget.node_orientation_deg(),
            peak_frequency_hz=orientation.peak_frequency_hz,
        )

    # --- node-side orientation (paper §5.2b, Fig. 13a) ----------------------------------

    @obs.traced("engine.node_orientation", count="engine.node_orientation.trials")
    def simulate_node_orientation(
        self,
        n_chirps: int = 3,
        sim_rate_hz: float = 200e6,
        return_traces: bool = False,
    ):
        """Triangular chirps; the node measures its detector peak gaps.

        The detector input during a sweep is a single tone whose
        amplitude is the port's path gain at the chirp's instantaneous
        frequency — so the envelope-domain synthesis is exact.
        """
        chirp = self.ap.config.field1_chirp
        n = int(round(n_chirps * chirp.duration_s * sim_rate_hz))
        grid = simcache.chirp_grid(chirp, sim_rate_hz, n)
        sqrt_ptx = math.sqrt(self.budget.tx_power_w())
        traces = {}
        adc_streams = {}
        for port, detector in (
            (FsaPort.A, self.node.config.detector_a),
            (FsaPort.B, self.node.config.detector_b),
        ):
            amplitude = sqrt_ptx * self._downlink_amplitude(port, grid.f_inst, grid=grid)
            rf = Signal(amplitude.astype(np.complex128), sim_rate_hz, 0.0, 0.0)
            video = detector.detect(rf, rng=self.rng)
            adc_streams[port] = self.node.config.mcu.sample_detector(video)
            if return_traces:
                traces[port] = video
        estimate = self.node.orientation_estimator.estimate(
            adc_streams[FsaPort.A], adc_streams[FsaPort.B], n_chirps=n_chirps
        )
        result = NodeOrientationResult(
            orientation_est_deg=estimate.orientation_deg,
            orientation_true_deg=self.budget.node_orientation_deg(),
            orientation_a_deg=estimate.orientation_a_deg,
            orientation_b_deg=estimate.orientation_b_deg,
        )
        if return_traces:
            return result, traces
        return result

    # --- preamble Field 1 (paper §7, Fig. 8) -------------------------------------------

    @obs.traced("engine.field1", count="engine.field1.trials")
    def simulate_field1(
        self,
        announce_uplink: bool,
        sim_rate_hz: float = 200e6,
    ) -> tuple[Signal, Signal]:
        """Synthesize the node's two ADC captures of preamble Field 1.

        Three back-to-back triangular chirps announce uplink; chirp /
        silent slot_s / chirp announces downlink. Returns the port-A and
        port-B ADC streams the firmware classifies.
        """
        chirp = self.ap.config.field1_chirp
        slot_s = chirp.duration_s
        n_slot = int(round(slot_s * sim_rate_hz))
        grid = simcache.chirp_grid(chirp, sim_rate_hz, n_slot)
        sqrt_ptx = math.sqrt(self.budget.tx_power_w())
        active = (True, True, True) if announce_uplink else (True, False, True)
        streams = []
        for port, detector in (
            (FsaPort.A, self.node.config.detector_a),
            (FsaPort.B, self.node.config.detector_b),
        ):
            amp_one = sqrt_ptx * self._downlink_amplitude(port, grid.f_inst, grid=grid)
            pieces = [amp_one if on else np.zeros(n_slot) for on in active]
            amplitude = np.concatenate(pieces)
            rf = Signal(amplitude.astype(np.complex128), sim_rate_hz, 0.0, 0.0)
            video = detector.detect(rf, rng=self.rng)
            streams.append(self.node.config.mcu.sample_detector(video))
        return streams[0], streams[1]

    # --- downlink (paper §6.1–6.2, Figs. 11 & 14) ----------------------------------------

    @obs.traced("engine.downlink", count="engine.downlink.trials")
    def simulate_downlink(
        self,
        bits,
        bit_rate_bps: float = 2e6,
        pair: TonePair | None = None,
        keep_traces: bool = False,
    ) -> DownlinkResult:
        """AP sends OAQFM (or OOK at normal incidence), node decodes.

        The per-port detector input is the phase-averaged two-tone
        envelope of (own tone, leaked other tone), each gated by its bit
        stream and scaled by the frequency-exact port gain — see
        :func:`repro.dsp.envelope.two_tone_mean_envelope` for why this is
        the exact post-video-filter observable.
        """
        bits = np.asarray(list(bits), dtype=np.uint8)
        if bits.size == 0:
            raise ConfigurationError("no bits to send")
        self.node.config.validate_downlink_rate(bit_rate_bps)
        orientation = self.budget.node_orientation_deg()
        if pair is None:
            pair = self.ap.tone_pair_for_orientation(orientation)
        use_ook = pair.separation_hz < self.ap.downlink_tx.min_tone_separation_hz

        if use_ook:
            obs.counter("engine.downlink.ook_fallbacks").inc()
            return self._simulate_downlink_ook(bits, bit_rate_bps, pair, keep_traces)

        from repro.phy.oaqfm import bits_to_symbols, tone_gates

        symbols = bits_to_symbols(bits)
        symbol_rate_bps = bit_rate_bps / 2.0
        sim_rate = max(64.0 * symbol_rate_bps, 4.0 * max(
            self.node.config.detector_a.video_bandwidth_hz,
            self.node.config.detector_b.video_bandwidth_hz,
        ))
        samples_per_symbol = int(round(sim_rate / symbol_rate_bps))
        sim_rate = samples_per_symbol * symbol_rate_bps
        gate_a, gate_b = tone_gates(symbols, samples_per_symbol)
        sqrt_tone_power = math.sqrt(self.budget.tx_power_w() / 2.0)

        amp = {
            (port, f): sqrt_tone_power
            * 10.0 ** (simcache.downlink_port_gain_db(self.budget, port, f) / 20.0)
            for port in (FsaPort.A, FsaPort.B)
            for f in (pair.freq_a_hz, pair.freq_b_hz)
        }
        detector_out = {}
        for port, detector in (
            (FsaPort.A, self.node.config.detector_a),
            (FsaPort.B, self.node.config.detector_b),
        ):
            # Each port sees BOTH tones through its own pattern: its
            # aligned tone at beam gain and the other at sidelobe level.
            # The phase-averaged envelope is symmetric in the two.
            tone_a_component = gate_a * amp[(port, pair.freq_a_hz)]
            tone_b_component = gate_b * amp[(port, pair.freq_b_hz)]
            envelope = two_tone_mean_envelope(tone_a_component, tone_b_component)
            rf = Signal(envelope.astype(np.complex128), sim_rate, 0.0, 0.0)
            detector_out[port] = detector.detect(rf, rng=self.rng)

        decode = self.node.demodulator.decode(
            detector_out[FsaPort.A],
            detector_out[FsaPort.B],
            symbol_rate_bps,
            len(symbols),
        )
        padded_tx = np.concatenate([bits, np.zeros(len(symbols) * 2 - bits.size, np.uint8)])
        return DownlinkResult(
            tx_bits=padded_tx,
            rx_bits=decode.bits,
            ber=measure_ber(padded_tx, decode.bits),
            sinr_a_db=decode.sinr_a_db,
            sinr_b_db=decode.sinr_b_db,
            used_ook_fallback=False,
            pair=pair,
            detector_a=detector_out[FsaPort.A] if keep_traces else None,
            detector_b=detector_out[FsaPort.B] if keep_traces else None,
        )

    @obs.traced("engine.downlink_dense", count="engine.downlink_dense.trials")
    def simulate_downlink_dense(
        self,
        bits,
        scheme,
        symbol_rate_hz: float = 1e6,
        pair: TonePair | None = None,
    ) -> DownlinkResult:
        """Dense (multi-amplitude) OAQFM downlink — the §9.4 extension.

        Each tone carries log2(L) bits via L amplitude levels; the node
        decodes with the same two envelope detectors, slicing against a
        full-scale reference estimated from the burst. ``scheme`` is a
        :class:`repro.phy.dense_oaqfm.DenseOaqfmScheme`.
        """
        from repro.dsp.modulation import symbol_integrate
        from repro.phy.dense_oaqfm import decode_dense_levels, dense_symbol_levels

        bits = np.asarray(list(bits), dtype=np.uint8)
        if bits.size == 0:
            raise ConfigurationError("no bits to send")
        bit_rate = symbol_rate_hz * scheme.bits_per_symbol
        self.node.config.validate_downlink_rate(bit_rate)
        orientation = self.budget.node_orientation_deg()
        if pair is None:
            pair = self.ap.tone_pair_for_orientation(orientation)
        if pair.separation_hz < self.ap.downlink_tx.min_tone_separation_hz:
            raise ConfigurationError(
                "dense OAQFM needs separable tones; use OOK near normal incidence"
            )
        levels_a, levels_b = dense_symbol_levels(bits, scheme)
        n_symbols = levels_a.size
        sim_rate_target = max(64.0 * symbol_rate_hz, 4.0 * max(
            self.node.config.detector_a.video_bandwidth_hz,
            self.node.config.detector_b.video_bandwidth_hz,
        ))
        samples_per_symbol = int(round(sim_rate_target / symbol_rate_hz))
        sim_rate = samples_per_symbol * symbol_rate_hz
        amp_a_levels = np.array([scheme.amplitude_for_level(l) for l in levels_a])
        amp_b_levels = np.array([scheme.amplitude_for_level(l) for l in levels_b])
        gate_a = np.repeat(amp_a_levels, samples_per_symbol)
        gate_b = np.repeat(amp_b_levels, samples_per_symbol)
        sqrt_tone_power = math.sqrt(self.budget.tx_power_w() / 2.0)
        amp = {
            (port, f): sqrt_tone_power
            * 10.0 ** (simcache.downlink_port_gain_db(self.budget, port, f) / 20.0)
            for port in (FsaPort.A, FsaPort.B)
            for f in (pair.freq_a_hz, pair.freq_b_hz)
        }
        measured = {}
        for port, detector in (
            (FsaPort.A, self.node.config.detector_a),
            (FsaPort.B, self.node.config.detector_b),
        ):
            own_gate, other_gate = (
                (gate_a, gate_b) if port == FsaPort.A else (gate_b, gate_a)
            )
            own_freq, other_freq = (
                (pair.freq_a_hz, pair.freq_b_hz)
                if port == FsaPort.A
                else (pair.freq_b_hz, pair.freq_a_hz)
            )
            envelope = two_tone_mean_envelope(
                own_gate * amp[(port, own_freq)],
                other_gate * amp[(port, other_freq)],
            )
            rf = Signal(envelope.astype(np.complex128), sim_rate, 0.0, 0.0)
            video = detector.detect(rf, rng=self.rng)
            measured[port] = symbol_integrate(video, 1.0 / symbol_rate_hz, n_symbols)
        rx_bits = decode_dense_levels(measured[FsaPort.A], measured[FsaPort.B], scheme)
        padded_tx = np.concatenate(
            [bits, np.zeros(n_symbols * scheme.bits_per_symbol - bits.size, np.uint8)]
        )
        return DownlinkResult(
            tx_bits=padded_tx,
            rx_bits=rx_bits,
            ber=measure_ber(padded_tx, rx_bits),
            sinr_a_db=float("nan"),
            sinr_b_db=float("nan"),
            used_ook_fallback=False,
            pair=pair,
        )

    def _simulate_downlink_ook(
        self,
        bits: np.ndarray,
        bit_rate_bps: float,
        pair: TonePair,
        keep_traces: bool,
    ) -> DownlinkResult:
        """Normal-incidence fallback: one carrier_hz, both ports receive it."""
        symbol_rate_bps = bit_rate_bps
        sim_rate_target = max(64.0 * symbol_rate_bps, 160e6)
        samples_per_symbol = int(round(sim_rate_target / symbol_rate_bps))
        sim_rate = samples_per_symbol * symbol_rate_bps
        carrier_hz = 0.5 * (pair.freq_a_hz + pair.freq_b_hz)
        gate = np.repeat(bits.astype(float), samples_per_symbol)
        sqrt_ptx = math.sqrt(self.budget.tx_power_w())
        amp_a = sqrt_ptx * 10.0 ** (
            simcache.downlink_port_gain_db(self.budget, FsaPort.A, carrier_hz) / 20.0
        )
        rf = Signal((gate * amp_a).astype(np.complex128), sim_rate, 0.0, 0.0)
        video = self.node.config.detector_a.detect(rf, rng=self.rng)
        rx_bits, sinr = self.node.demodulator.decode_ook(
            video, symbol_rate_bps, bits.size
        )
        return DownlinkResult(
            tx_bits=bits,
            rx_bits=rx_bits,
            ber=measure_ber(bits, rx_bits),
            sinr_a_db=sinr,
            sinr_b_db=float("nan"),
            used_ook_fallback=True,
            pair=pair,
            detector_a=video if keep_traces else None,
            detector_b=None,
        )

    # --- uplink (paper §6.3, Fig. 15) ------------------------------------------------------

    @obs.traced("engine.uplink", count="engine.uplink.trials")
    def simulate_uplink(
        self,
        bits,
        bit_rate_bps: float = 10e6,
        pair: TonePair | None = None,
    ) -> UplinkResult:
        """Node backscatters the AP's two-tone query; AP decodes.

        Per mixed branch, the node's gated reflection of "its" tone is a
        baseband square wave; self-interference/clutter are the DC the
        receiver blocks; thermal noise enters at kT·NF over the simulated
        band and is narrowed by symbol integration. A per-symbol
        multiplicative term models TX phase noise / residual SI, capping
        the short-range SNR (``Calibration.uplink_sinr_cap_db``).
        """
        bits = np.asarray(list(bits), dtype=np.uint8)
        if bits.size == 0:
            raise ConfigurationError("no bits to send")
        orientation = self.budget.node_orientation_deg()
        if pair is None:
            pair = self.ap.tone_pair_for_orientation(orientation)
        from repro.ap.uplink_rx import PILOT_SYMBOLS, pilot_bits

        n_pilots = len(PILOT_SYMBOLS)
        tx_stream = np.concatenate([pilot_bits(), bits])
        gates = self.node.modulator.gates_for_bits(
            tx_stream, bit_rate_bps, sample_rate_hz=16.0 * bit_rate_bps / 2.0
        )
        symbol_rate_hz = gates.symbol_rate_hz
        sim_rate = gates.samples_per_symbol * symbol_rate_hz
        n = gates.gate_a.size
        n_symbols = gates.n_symbols
        sqrt_tone_power = math.sqrt(self.budget.tx_power_w() / 2.0)
        # The mixer's conversion loss attenuates signal and (LNA-dominated,
        # input-referred) noise alike, so it cancels out of the branch SNR
        # and is deliberately not applied here.
        eps = 10.0 ** (-self.calibration.uplink_sinr_cap_db / 20.0)
        noise_power = thermal_noise_power_w(
            sim_rate, self.calibration.ap_noise_figure_db
        )

        branches = {}
        for port, gate, freq in (
            (FsaPort.A, gates.gate_a, pair.freq_a_hz),
            (FsaPort.B, gates.gate_b, pair.freq_b_hz),
        ):
            amp = sqrt_tone_power * 10.0 ** (
                simcache.backscatter_gain_db(self.budget, port, freq) / 20.0
            )
            phase = self.rng.uniform(0.0, 2.0 * math.pi)
            # Per-symbol multiplicative noise (correlated within a symbol).
            mult = 1.0 + eps * np.repeat(
                self.rng.standard_normal(n_symbols), gates.samples_per_symbol
            )
            signal = amp * gate * mult[:n] * np.exp(1j * phase)
            # Static residue: clutter + SI that the DC block removes.
            dc = 10.0 * amp
            sigma = math.sqrt(noise_power / 2.0)
            noise = sigma * (
                self.rng.standard_normal(n) + 1j * self.rng.standard_normal(n)
            )
            branches[port] = Signal(signal + dc + noise, sim_rate, 0.0, 0.0)

        decode = self.ap.uplink_rx.decode(
            branches[FsaPort.A],
            branches[FsaPort.B],
            symbol_rate_hz,
            n_symbols,
            n_pilot_symbols=n_pilots,
        )
        n_data_symbols = n_symbols - n_pilots
        padded_tx = np.concatenate(
            [bits, np.zeros(n_data_symbols * 2 - bits.size, np.uint8)]
        )
        return UplinkResult(
            tx_bits=padded_tx,
            rx_bits=decode.bits,
            ber=measure_ber(padded_tx, decode.bits),
            snr_a_db=decode.snr_a_db,
            snr_b_db=decode.snr_b_db,
            pair=pair,
        )
