"""Concurrent multi-node uplink over space-division multiplexing.

Paper §7: "MilBack can potentially support multiple nodes by using
spatial division multiplexing … the AP can create multiple beams towards
different nodes and establish communication links with them
concurrently." This module makes that claim quantitative: each node is
served by a beam pointed at it, and every *other* concurrently-served
node leaks into that beam through its pattern sidelobes — attenuated
spatially (beam roll-off, twice) and spectrally (tone separation versus
the receiver's symbol bandwidth).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.antennas.fsa import FsaPort
from repro.ap.access_point import AccessPoint
from repro.ap.uplink_rx import PILOT_SYMBOLS, pilot_bits
from repro.channel.scene import Scene2D
from repro.dsp.noise import thermal_noise_power_w
from repro.dsp.signal import Signal
from repro.errors import ConfigurationError
from repro.node.node import BackscatterNode
from repro.phy.ber import measure_ber
from repro.sim.calibration import Calibration, default_calibration
from repro.sim.linkbudget import LinkBudget
from repro.utils.geometry import angle_between_deg
from repro.utils.rng import RngLike, make_rng

__all__ = ["ConcurrentNodeResult", "MultiNodeUplink", "MultiNodeDownlink"]


@dataclass(frozen=True)
class ConcurrentNodeResult:
    """One node's outcome in a concurrent SDM slot."""

    node_id: str
    ber: float
    sinr_db: float
    interference_over_noise_db: float

    @property
    def delivered_error_free(self) -> bool:
        # BER is bit_errors/n: exactly 0.0 iff the error count is zero.
        return self.ber == 0.0  # milback: disable=ML003


class MultiNodeUplink:
    """Simulates one concurrent uplink slot with N simultaneously served
    nodes, each with its own beam and OAQFM tone pair."""

    def __init__(
        self,
        scene: Scene2D,
        node: BackscatterNode | None = None,
        ap: AccessPoint | None = None,
        calibration: Calibration | None = None,
        seed: RngLike = None,
    ) -> None:
        if len(scene.nodes) < 1:
            raise ConfigurationError("scene has no nodes")
        self.scene = scene
        self.node = node or BackscatterNode()
        self.ap = ap or AccessPoint(node_fsa=self.node.fsa)
        self.calibration = calibration or default_calibration()
        self.rng = make_rng(seed)
        self.budgets = {
            placement.node_id: LinkBudget(
                scene=scene,
                fsa=self.node.fsa,
                tx_horn=self.ap.config.tx_horn,
                rx_horn=self.ap.config.rx_horn,
                switch=self.node.config.switch_a,
                calibration=self.calibration,
                tx_power_dbm=self.ap.config.tx_power_dbm,
                node_id=placement.node_id,
            )
            for placement in scene.nodes
        }

    def spatial_isolation_db(self, served_id: str, interferer_id: str) -> float:
        """Two-way beam roll-off of the interferer inside the served
        node's beam (TX illumination + RX capture)."""
        az_served = self.scene.node_azimuth_deg(served_id)
        az_other = self.scene.node_azimuth_deg(interferer_id)
        offset = angle_between_deg(az_other, az_served)
        tx = self.ap.config.tx_horn
        rx = self.ap.config.rx_horn
        rolloff = (
            (tx.peak_gain_dbi - float(tx.gain_dbi(offset, 28e9)))
            + (rx.peak_gain_dbi - float(rx.gain_dbi(offset, 28e9)))
        )
        return rolloff

    def spectral_isolation_db(
        self, served_id: str, interferer_id: str, symbol_rate_hz: float
    ) -> float:
        """Rejection of the interferer's nearest tone by the served
        branch's mixer + symbol integrator.

        Inside the symbol bandwidth: no rejection. Outside: the boxcar
        integrator rolls off as sinc — modeled as 20·log10 of the
        normalized offset, floored at 60 dB.
        """
        served_pair = self._tone_pair(served_id)
        other_pair = self._tone_pair(interferer_id)
        min_offset = min(
            abs(fs - fo)
            for fs in (served_pair.freq_a_hz, served_pair.freq_b_hz)
            for fo in (other_pair.freq_a_hz, other_pair.freq_b_hz)
        )
        if min_offset <= symbol_rate_hz:
            return 0.0
        return float(min(20.0 * math.log10(min_offset / symbol_rate_hz), 60.0))

    def simulate_slot(
        self,
        payloads: dict[str, np.ndarray],
        bit_rate_bps: float = 10e6,
    ) -> dict[str, ConcurrentNodeResult]:
        """Serve every node in ``payloads`` concurrently for one slot."""
        if not payloads:
            raise ConfigurationError("no payloads to send")
        for node_id in payloads:
            self.scene.node(node_id)  # validates existence
        symbol_rate_bps = bit_rate_bps / 2.0
        samples_per_symbol = 16
        sim_rate = samples_per_symbol * symbol_rate_bps
        eps = 10.0 ** (-self.calibration.uplink_sinr_cap_db / 20.0)
        noise_power = thermal_noise_power_w(
            sim_rate, self.calibration.ap_noise_figure_db
        )
        sqrt_tone_power = math.sqrt(
            self.budgets[next(iter(payloads))].tx_power_w() / 2.0
        )

        # Build every node's gate streams once (shared across beams).
        streams = {}
        for node_id, bits in payloads.items():
            tx_stream = np.concatenate(
                [pilot_bits(), np.asarray(list(bits), dtype=np.uint8)]
            )
            gates = self.node.modulator.gates_for_bits(
                tx_stream, bit_rate_bps, sample_rate_hz=sim_rate
            )
            streams[node_id] = (tx_stream, gates)

        n_symbols = max(g.n_symbols for _, g in streams.values())
        results = {}
        for node_id in payloads:
            results[node_id] = self._decode_one(
                node_id,
                streams,
                symbol_rate_bps,
                sim_rate,
                n_symbols,
                sqrt_tone_power,
                eps,
                noise_power,
            )
        return results

    # --- internals ---------------------------------------------------------------

    def _tone_pair(self, node_id: str):
        orientation = self.scene.node_orientation_deg(node_id)
        return self.node.fsa.alignment_pair(orientation)

    def _decode_one(
        self,
        node_id: str,
        streams: dict,
        symbol_rate: float,
        sim_rate: float,
        n_symbols: int,
        sqrt_tone_power: float,
        eps: float,
        noise_power: float,
    ) -> ConcurrentNodeResult:
        budget = self.budgets[node_id]
        pair = self._tone_pair(node_id)
        tx_stream, gates = streams[node_id]
        n = gates.gate_a.size
        interference_power_total = 0.0
        branches = {}
        for port, gate, freq in (
            (FsaPort.A, gates.gate_a, pair.freq_a_hz),
            (FsaPort.B, gates.gate_b, pair.freq_b_hz),
        ):
            amp = sqrt_tone_power * 10.0 ** (
                budget.backscatter_gain_db(port, freq) / 20.0
            )
            phase = self.rng.uniform(0.0, 2.0 * math.pi)
            mult = 1.0 + eps * np.repeat(
                self.rng.standard_normal(gates.n_symbols), gates.samples_per_symbol
            )
            samples = amp * gate * mult[:n] * np.exp(1j * phase) + 10.0 * amp

            # Every other concurrently-served node leaks in through the
            # beam sidelobes and whatever spectral offset its tones have.
            for other_id, (_, other_gates) in streams.items():
                if other_id == node_id:
                    continue
                other_budget = self.budgets[other_id]
                other_pair = self._tone_pair(other_id)
                isolation_db = self.spatial_isolation_db(node_id, other_id)
                isolation_db += self.spectral_isolation_db(
                    node_id, other_id, symbol_rate
                )
                leak_amp = sqrt_tone_power * 10.0 ** (
                    (
                        other_budget.backscatter_gain_db(port, other_pair.freq_a_hz)
                        - isolation_db
                    )
                    / 20.0
                )
                leak_phase = self.rng.uniform(0.0, 2.0 * math.pi)
                m = min(n, other_gates.gate_a.size)
                samples[:m] = samples[:m] + leak_amp * other_gates.gate_a[:m] * np.exp(
                    1j * leak_phase
                )
                interference_power_total += leak_amp**2 / 2.0

            sigma = math.sqrt(noise_power / 2.0)
            samples = samples + sigma * (
                self.rng.standard_normal(n) + 1j * self.rng.standard_normal(n)
            )
            branches[port] = Signal(samples, sim_rate, 0.0, 0.0)

        decode = self.ap.uplink_rx.decode(
            branches[FsaPort.A],
            branches[FsaPort.B],
            symbol_rate,
            gates.n_symbols,
            n_pilot_symbols=len(PILOT_SYMBOLS),
        )
        data_bits = tx_stream[2 * len(PILOT_SYMBOLS) :]
        padded_tx = np.concatenate(
            [
                data_bits,
                np.zeros(decode.bits.size - data_bits.size, dtype=np.uint8),
            ]
        )
        ion_db = (
            10.0 * math.log10(interference_power_total / noise_power)
            if interference_power_total > 0
            else -math.inf
        )
        return ConcurrentNodeResult(
            node_id=node_id,
            ber=measure_ber(padded_tx, decode.bits),
            sinr_db=decode.snr_db,
            interference_over_noise_db=ion_db,
        )


class MultiNodeDownlink:
    """Concurrent SDM downlink: one beam per node, each carrying its own
    OAQFM tone pair.

    At a node, spectral isolation comes from its FSA, not a mixer — the
    envelope detector is frequency-blind, so any foreign tone that gets
    through the node's port pattern adds to the envelope. Foreign beams
    are attenuated by the AP's TX beam roll-off at this node's azimuth
    and by this node's port gain at the foreign tone frequency; the
    lumped interferers enter the detector envelope as a power-summed
    second component (exact for one interferer, RMS-approximate beyond).
    """

    def __init__(
        self,
        scene: Scene2D,
        node: BackscatterNode | None = None,
        ap: AccessPoint | None = None,
        calibration: Calibration | None = None,
        seed: RngLike = None,
    ) -> None:
        if len(scene.nodes) < 1:
            raise ConfigurationError("scene has no nodes")
        self.scene = scene
        self.node = node or BackscatterNode()
        self.ap = ap or AccessPoint(node_fsa=self.node.fsa)
        self.calibration = calibration or default_calibration()
        self.rng = make_rng(seed)
        self.budgets = {
            placement.node_id: LinkBudget(
                scene=scene,
                fsa=self.node.fsa,
                tx_horn=self.ap.config.tx_horn,
                rx_horn=self.ap.config.rx_horn,
                switch=self.node.config.switch_a,
                calibration=self.calibration,
                tx_power_dbm=self.ap.config.tx_power_dbm,
                node_id=placement.node_id,
            )
            for placement in scene.nodes
        }

    def tx_beam_rolloff_db(self, beam_node_id: str, at_node_id: str) -> float:
        """TX beam (pointed at ``beam_node_id``) roll-off at another
        node's azimuth."""
        az_beam = self.scene.node_azimuth_deg(beam_node_id)
        az_other = self.scene.node_azimuth_deg(at_node_id)
        offset = angle_between_deg(az_other, az_beam)
        tx = self.ap.config.tx_horn
        return tx.peak_gain_dbi - float(tx.gain_dbi(offset, 28e9))

    def simulate_slot(
        self,
        payloads: dict[str, np.ndarray],
        bit_rate_bps: float = 2e6,
    ) -> dict[str, "ConcurrentNodeResult"]:
        """Send every node its own payload concurrently for one slot."""
        from repro.antennas.fsa import FsaPort as _Port
        from repro.dsp.envelope import two_tone_mean_envelope
        from repro.dsp.signal import Signal as _Signal
        from repro.phy.oaqfm import bits_to_symbols, tone_gates

        if not payloads:
            raise ConfigurationError("no payloads to send")
        symbol_rate_bps = bit_rate_bps / 2.0
        sim_rate_target = max(64.0 * symbol_rate_bps, 4.0 * max(
            self.node.config.detector_a.video_bandwidth_hz,
            self.node.config.detector_b.video_bandwidth_hz,
        ))
        samples_per_symbol = int(round(sim_rate_target / symbol_rate_bps))
        sim_rate = samples_per_symbol * symbol_rate_bps
        sqrt_tone_power = math.sqrt(
            self.budgets[next(iter(payloads))].tx_power_w() / 2.0
        )

        # Per-node symbol gates + tone pairs.
        streams = {}
        for node_id, bits in payloads.items():
            self.scene.node(node_id)
            symbols = bits_to_symbols(np.asarray(list(bits), dtype=np.uint8))
            gate_a, gate_b = tone_gates(symbols, samples_per_symbol)
            orientation = self.scene.node_orientation_deg(node_id)
            pair = self.node.fsa.alignment_pair(orientation)
            streams[node_id] = (symbols, gate_a, gate_b, pair)

        results = {}
        for node_id, bits in payloads.items():
            symbols, gate_a, gate_b, pair = streams[node_id]
            orientation = self.scene.node_orientation_deg(node_id)
            budget = self.budgets[node_id]
            detector_out = {}
            interference_total = 0.0
            for port, detector, own_freq, own_gate, other_gate, other_freq in (
                (_Port.A, self.node.config.detector_a, pair.freq_a_hz, gate_a,
                 gate_b, pair.freq_b_hz),
                (_Port.B, self.node.config.detector_b, pair.freq_b_hz, gate_b,
                 gate_a, pair.freq_a_hz),
            ):
                n = own_gate.size
                own = own_gate * sqrt_tone_power * 10.0 ** (
                    budget.downlink_port_gain_db(port, own_freq) / 20.0
                )
                # Same-beam cross-tone leak (the classic OAQFM non-ideality).
                leak_power = (other_gate * sqrt_tone_power * 10.0 ** (
                    budget.downlink_port_gain_db(port, other_freq) / 20.0
                )) ** 2
                # Foreign beams: both their tones through this node's port.
                for other_id, (_, o_gate_a, o_gate_b, o_pair) in streams.items():
                    if other_id == node_id:
                        continue
                    rolloff = self.tx_beam_rolloff_db(other_id, node_id)
                    for o_gate, o_freq in (
                        (o_gate_a, o_pair.freq_a_hz),
                        (o_gate_b, o_pair.freq_b_hz),
                    ):
                        m = min(n, o_gate.size)
                        amp = sqrt_tone_power * 10.0 ** (
                            (budget.downlink_port_gain_db(port, o_freq) - rolloff)
                            / 20.0
                        )
                        leak_power[:m] = leak_power[:m] + (o_gate[:m] * amp) ** 2
                        interference_total += amp**2 / 2.0
                envelope = two_tone_mean_envelope(own, np.sqrt(leak_power))
                rf = _Signal(envelope.astype(np.complex128), sim_rate, 0.0, 0.0)
                detector_out[port] = detector.detect(rf, rng=self.rng)
            decode = self.node.demodulator.decode(
                detector_out[_Port.A],
                detector_out[_Port.B],
                symbol_rate_bps,
                len(symbols),
            )
            tx_bits = np.asarray(list(bits), dtype=np.uint8)
            padded = np.concatenate(
                [tx_bits, np.zeros(2 * len(symbols) - tx_bits.size, np.uint8)]
            )
            # Reference the aggregate interference to the node's own
            # detector noise (input-referred), keeping the field's
            # semantics identical to the uplink case.
            detector = self.node.config.detector_a
            noise_ref = (
                detector.output_noise_sigma_v() / detector.responsivity_v_per_sqrt_w
            ) ** 2
            results[node_id] = ConcurrentNodeResult(
                node_id=node_id,
                ber=measure_ber(padded, decode.bits),
                sinr_db=decode.sinr_db,
                interference_over_noise_db=(
                    10.0 * math.log10(max(interference_total, 1e-300) / noise_ref)
                ),
            )
        return results
