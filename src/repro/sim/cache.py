"""Scene-invariant caches for the simulator hot path.

A full evaluation sweep builds a fresh :class:`MilBackSimulator` per
trial, yet most of what each trial computes is a pure function of the
*scene configuration* — chirp time grids, FSA gain sweeps, clutter
returns, link-budget scalars — and never touches the trial RNG. This
module memoizes exactly that RNG-free slice at process level, so trial
N+1 reuses what trial N derived and the per-trial cost reduces to the
stochastic parts (noise, jitter, ripple application).

Two invariants keep the caches correct:

* **Keys are value keys.** Entries are keyed by the frozen dataclasses
  that define the configuration (``Scene2D``, ``FsaDesign``,
  ``Calibration``, chirps, horns), never by object identity — a sweep
  that rebuilds identical objects every trial still hits.
* **Values are immutable.** Cached arrays are marked read-only
  (``setflags(write=False)``) before they are shared, so an accidental
  in-place edit raises instead of corrupting every later trial.

Anything that consumes randomness — ripple control points, noise,
jitter — stays out of here by construction; quantities that depend on an
:class:`~repro.channel.atmosphere.AtmosphereModel` bypass the cache
(weather sweeps mutate the model too freely to key on).

Caches are process-local. A forked :mod:`repro.parallel` worker inherits
a warm copy for free; hit/miss counts per cache surface as
``cache.hits{cache=...}`` / ``cache.misses{cache=...}``.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Callable, Hashable, TypeVar

import numpy as np

from repro import obs
from repro.constants import SPEED_OF_LIGHT
from repro.sim.linkbudget import LinkBudget, PathGain

__all__ = [
    "ChirpGrid",
    "SceneInvariantCache",  # milback: disable=ML014 — public cache API
    "backscatter_gain_db",
    "cache_sizes",  # milback: disable=ML014 — public warmth probe
    "chirp_grid",
    "clear_caches",
    "clutter_paths",  # milback: disable=ML014 — public cache API
    "downlink_port_gain_db",
    "frozen_array",
    "fsa_gain_sweep",
    "static_beat_field",
]

V = TypeVar("V")


def frozen_array(array: np.ndarray) -> np.ndarray:
    """Return a C-contiguous, read-only array safe to share/cache."""
    array = np.ascontiguousarray(array)
    array.setflags(write=False)
    return array


_frozen = frozen_array


class SceneInvariantCache:
    """Bounded LRU store for one family of derived quantities.

    Single-threaded by design (the simulator runs one trial at a time
    per process; parallel sweeps use separate processes), so no locking.
    """

    def __init__(self, name: str, max_entries: int = 256) -> None:
        self.name = name
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, object] = OrderedDict()

    def get_or_create(self, key: Hashable, factory: Callable[[], V]) -> V:
        try:
            value = self._entries[key]
        except KeyError:
            obs.counter("cache.misses", cache=self.name).inc()
            value = factory()
            self._entries[key] = value
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return value
        self._entries.move_to_end(key)
        obs.counter("cache.hits", cache=self.name).inc()
        return value  # type: ignore[return-value]

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_GRID_CACHE = SceneInvariantCache("chirp_grid", max_entries=32)
_FSA_SWEEP_CACHE = SceneInvariantCache("fsa_sweep", max_entries=256)
_CLUTTER_CACHE = SceneInvariantCache("clutter_paths", max_entries=512)
_SCALAR_GAIN_CACHE = SceneInvariantCache("link_scalars", max_entries=2048)
_STATIC_FIELD_CACHE = SceneInvariantCache("static_field", max_entries=64)

_ALL_CACHES = (
    _GRID_CACHE,
    _FSA_SWEEP_CACHE,
    _CLUTTER_CACHE,
    _SCALAR_GAIN_CACHE,
    _STATIC_FIELD_CACHE,
)


def clear_caches() -> None:
    """Empty every scene-invariant cache (tests, memory pressure)."""
    for cache in _ALL_CACHES:
        cache.clear()


def cache_sizes() -> dict[str, int]:
    """Current entry count per cache, by cache name.

    A cheap warmth probe: a persistent-pool worker that reports the same
    non-zero sizes chunk after chunk is demonstrably reusing its caches
    rather than rebuilding them (see ``docs/PERFORMANCE.md``).
    """
    return {cache.name: len(cache) for cache in _ALL_CACHES}


# --- chirp time/frequency grids ------------------------------------------------------


class ChirpGrid:
    """Precomputed sample grid for one chirp at one sample rate.

    ``t`` is the sample-time vector, ``f_inst`` the chirp's instantaneous
    frequency at each sample, ``mean_hz`` its average (the "flat" band
    reference the budget helpers use). ``key`` is the hashable identity
    downstream caches chain on, so a gain sweep over this grid can be
    memoized without hashing the arrays themselves.
    """

    __slots__ = ("chirp", "fs_hz", "n", "t", "f_inst", "mean_hz", "key")

    def __init__(self, chirp, fs_hz: float, n: int) -> None:
        self.chirp = chirp
        self.fs_hz = float(fs_hz)
        self.n = int(n)
        self.t = _frozen(np.arange(self.n) / self.fs_hz)
        self.f_inst = _frozen(np.asarray(chirp.instantaneous_frequency_hz(self.t), dtype=float))
        self.mean_hz = float(np.mean(self.f_inst)) if self.n else float(chirp.center_hz)
        self.key = (chirp, self.fs_hz, self.n)


def chirp_grid(chirp, fs_hz: float, n: int | None = None) -> ChirpGrid:
    """The shared time/instantaneous-frequency grid for ``chirp`` at ``fs_hz``.

    ``n`` defaults to one chirp period; pass an explicit sample count for
    multi-chirp windows (e.g. node-side orientation sweeps).
    """
    if n is None:
        n = int(round(chirp.duration_s * float(fs_hz)))
    key = (chirp, float(fs_hz), int(n))
    return _GRID_CACHE.get_or_create(key, lambda: ChirpGrid(chirp, fs_hz, n))


# --- FSA gain sweeps -----------------------------------------------------------------


def _fsa_key(fsa) -> Hashable:
    # DualPortFsa is identity-hashed; its behaviour is fully determined
    # by the frozen design plus the band, so key on those values.
    return (fsa.design, tuple(fsa.band_hz))


def fsa_gain_sweep(fsa, port: str, orientation_deg: float, grid: ChirpGrid) -> np.ndarray:
    """``fsa.gain_dbi(port, orientation, f)`` across a grid, memoized.

    The vectorized pattern evaluation is the single most expensive
    RNG-free term in a beat record (array-powered Bessel/sinc maths per
    sample); one scene's sweep is identical for every trial.
    """
    key = (_fsa_key(fsa), str(port), float(orientation_deg), grid.key)
    return _FSA_SWEEP_CACHE.get_or_create(
        key,
        lambda: _frozen(
            np.asarray(fsa.gain_dbi(port, float(orientation_deg), grid.f_inst), dtype=float)
        ),
    )


# --- link-budget derivations ---------------------------------------------------------


def _switch_key(switch) -> Hashable:
    # SpdtSwitch is a mutable dataclass; only its loss figures enter any
    # gain expression (state gates modulation, handled by the engine).
    return (float(switch.insertion_loss_db), float(switch.isolation_db))


def _budget_key(budget: LinkBudget) -> Hashable:
    return (
        budget.scene,
        _fsa_key(budget.fsa),
        budget.tx_horn,
        budget.rx_horn,
        _switch_key(budget.switch),
        budget.calibration,
        float(budget.tx_power_dbm),
        budget.node_id,
    )


def clutter_paths(
    budget: LinkBudget, frequency_hz: float, pointing_azimuth_deg: float
) -> tuple[PathGain, ...]:
    """Radar-equation clutter returns for one pointing, memoized.

    Depends only on the scene's reflector geometry, the horns and the TX
    power — never on the trial RNG or the atmosphere model.
    """
    key = (
        budget.scene,
        budget.tx_horn,
        budget.rx_horn,
        float(budget.tx_power_dbm),
        float(frequency_hz),
        float(pointing_azimuth_deg),
    )
    return _CLUTTER_CACHE.get_or_create(
        key,
        lambda: tuple(budget.clutter_paths(frequency_hz, pointing_azimuth_deg)),
    )


def downlink_port_gain_db(budget: LinkBudget, port: str, frequency_hz: float) -> float:
    """Memoized :meth:`LinkBudget.downlink_port_gain_db` scalar."""
    if budget.atmosphere is not None:
        obs.counter("cache.bypasses", cache="link_scalars").inc()
        return budget.downlink_port_gain_db(port, frequency_hz)
    key = ("downlink", _budget_key(budget), str(port), float(frequency_hz))
    return _SCALAR_GAIN_CACHE.get_or_create(
        key, lambda: float(budget.downlink_port_gain_db(port, frequency_hz))
    )


def backscatter_gain_db(budget: LinkBudget, port: str, frequency_hz: float) -> float:
    """Memoized :meth:`LinkBudget.backscatter_gain_db` scalar."""
    if budget.atmosphere is not None:
        obs.counter("cache.bypasses", cache="link_scalars").inc()
        return budget.backscatter_gain_db(port, frequency_hz)
    key = ("backscatter", _budget_key(budget), str(port), float(frequency_hz))
    return _SCALAR_GAIN_CACHE.get_or_create(
        key, lambda: float(budget.backscatter_gain_db(port, frequency_hz))
    )


# --- static beat field ---------------------------------------------------------------


def static_beat_field(
    budget: LinkBudget,
    grid: ChirpGrid,
    pointing_azimuth_deg: float,
    n_rx_antennas: int,
    baseline_m: float,
    path_azimuth: Callable[[str], float],
) -> tuple[np.ndarray, ...]:
    """Per-antenna sum of all static beat tones (clutter + TX leakage).

    Identical for every chirp of every trial in a scene: each static
    path contributes a fixed tone at slope·τ with a fixed per-antenna
    phase progression. The per-chirp stochastic parts (cancellation
    residual, jitter, noise) multiply this field later in the engine.
    The accumulation reproduces the engine's original per-path loop
    operation-for-operation, so cached and uncached runs are bitwise
    identical.
    """
    key = (
        budget.scene,
        budget.tx_horn,
        budget.rx_horn,
        float(budget.tx_power_dbm),
        grid.key,
        float(pointing_azimuth_deg),
        int(n_rx_antennas),
        float(baseline_m),
    )

    def build() -> tuple[np.ndarray, ...]:
        chirp = grid.chirp
        slope_hz_per_s = chirp.slope_hz_per_s
        lam = SPEED_OF_LIGHT / chirp.center_hz
        sqrt_ptx = math.sqrt(budget.tx_power_w())
        static = [np.zeros(grid.n, dtype=np.complex128) for _ in range(n_rx_antennas)]
        paths = list(clutter_paths(budget, chirp.center_hz, pointing_azimuth_deg))
        paths.append(budget.self_interference_path())
        for path in paths:
            beat = slope_hz_per_s * path.delay_s
            phase0 = 2.0 * math.pi * chirp.start_hz * path.delay_s
            tone_shape = path.amplitude * sqrt_ptx * np.exp(
                1j * (2.0 * math.pi * beat * grid.t + phase0)
            )
            azimuth = path_azimuth(path.label)
            unit_phase = (
                2.0 * math.pi * baseline_m * math.sin(math.radians(azimuth)) / lam
            )
            for m in range(n_rx_antennas):
                static[m] += tone_shape * np.exp(1j * m * unit_phase)
        return tuple(_frozen(s) for s in static)

    return _STATIC_FIELD_CACHE.get_or_create(key, build)
