"""End-to-end simulation: calibration, link budgets, the engine."""

from repro.sim.calibration import Calibration, default_calibration
from repro.sim.linkbudget import LinkBudget, PathGain
from repro.sim.multinode import MultiNodeUplink, MultiNodeDownlink, ConcurrentNodeResult
from repro.sim.engine import (
    MilBackSimulator,
    LocalizationResult,
    ApOrientationResult,
    NodeOrientationResult,
    DownlinkResult,
    UplinkResult,
)

__all__ = [
    "Calibration",
    "default_calibration",
    "LinkBudget",
    "PathGain",
    "MilBackSimulator",
    "LocalizationResult",
    "ApOrientationResult",
    "NodeOrientationResult",
    "DownlinkResult",
    "UplinkResult",
    "MultiNodeUplink",
    "MultiNodeDownlink",
    "ConcurrentNodeResult",  # milback: disable=ML014 — public simulation API
]
