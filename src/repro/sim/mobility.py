"""Mobile-session simulation: a moving node under time-varying blockage.

Steps a trajectory at the protocol's packet cadence; at each step the
node's current pose becomes a static scene (quasi-static fading: packet
air time ≪ motion timescales), any active blockage inflates the link's
path loss, and one localization + one uplink burst run. The output is a
time series with outage bookkeeping — the "walking VR user" workload
the paper motivates but could not evaluate on a cabled testbed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.channel.mobility import BlockageModel, WaypointTrajectory
from repro.channel.multipath import default_indoor_clutter
from repro.channel.scene import NodePlacement, Scene2D
from repro.errors import ConfigurationError, LocalizationError
from repro.sim.calibration import Calibration, default_calibration
from repro.sim.engine import MilBackSimulator
from repro.utils.rng import RngLike, make_rng

__all__ = ["MobileStep", "MobileSessionResult", "MobileSessionSimulator"]  # milback: disable=ML014 — public mobility result types


@dataclass(frozen=True)
class MobileStep:
    """One packet-time snapshot of the mobile link."""

    time_s: float
    distance_true_m: float
    distance_est_m: float | None
    uplink_snr_db: float | None
    uplink_ber: float | None
    blockage_loss_db: float
    in_outage: bool


@dataclass(frozen=True)
class MobileSessionResult:
    """The full time series plus summary statistics."""

    steps: tuple[MobileStep, ...]

    def outage_fraction(self) -> float:
        """Fraction of steps in outage."""
        if not self.steps:
            return 0.0
        return sum(s.in_outage for s in self.steps) / len(self.steps)

    def mean_snr_db(self) -> float:
        """Mean uplink SNR over non-outage steps."""
        values = [s.uplink_snr_db for s in self.steps if s.uplink_snr_db is not None]
        if not values:
            raise ConfigurationError("no successful steps")
        return float(np.mean(values))

    def worst_tracking_error_m(self) -> float:
        """Largest ranging error among successful fixes."""
        errors = [
            abs(s.distance_est_m - s.distance_true_m)
            for s in self.steps
            if s.distance_est_m is not None
        ]
        if not errors:
            raise ConfigurationError("no successful fixes")
        return max(errors)


class MobileSessionSimulator:
    """Runs a packet-cadence session along a trajectory."""

    def __init__(
        self,
        trajectory: WaypointTrajectory,
        blockage: BlockageModel | None = None,
        calibration: Calibration | None = None,
        with_clutter: bool = True,
        outage_snr_db: float = 5.0,
        seed: RngLike = None,
    ) -> None:
        self.trajectory = trajectory
        self.blockage = blockage or BlockageModel()
        self.calibration = calibration or default_calibration()
        self.with_clutter = with_clutter
        self.outage_snr_db = outage_snr_db
        self.rng = make_rng(seed)

    def run(
        self,
        step_s: float = 0.1,
        bit_rate_bps: float = 10e6,
        n_bits: int = 128,
    ) -> MobileSessionResult:
        """Step the whole trajectory; one fix + one uplink per step."""
        if step_s <= 0:
            raise ConfigurationError("step must be positive")
        steps: list[MobileStep] = []
        t_s = self.trajectory.start_time_s
        while t_s <= self.trajectory.end_time_s + 1e-9:
            steps.append(self._one_step(t_s, bit_rate_bps, n_bits))
            t_s += step_s
        return MobileSessionResult(tuple(steps))

    # --- internals -----------------------------------------------------------------

    def _one_step(self, t: float, bit_rate_bps: float, n_bits: int) -> MobileStep:
        pose = self.trajectory.pose_at(t)
        clutter = tuple(default_indoor_clutter()) if self.with_clutter else ()
        scene = Scene2D(nodes=(NodePlacement(pose, "mobile"),), clutter=clutter)
        loss = self.blockage.loss_db_at(t)
        calibration = replace(
            self.calibration,
            downlink_implementation_loss_db=(
                self.calibration.downlink_implementation_loss_db + loss
            ),
            # The backscatter path crosses the obstruction twice.
            uplink_implementation_loss_db=(
                self.calibration.uplink_implementation_loss_db + 2.0 * loss
            ),
        )
        sim = MilBackSimulator(scene, calibration=calibration, seed=self.rng)
        distance_true = scene.node_distance_m()

        distance_est_m: float | None
        try:
            fix = sim.simulate_localization()
            distance_est_m = fix.distance_est_m
            # A fix that lands on clutter instead of the node is an outage
            # symptom, not a valid estimate.
            if abs(fix.distance_error_m) > 1.0:
                distance_est_m = None
        except LocalizationError:
            distance_est_m = None

        bits = self.rng.integers(0, 2, n_bits)
        uplink = sim.simulate_uplink(bits, bit_rate_bps)
        snr_db = uplink.snr_db
        snr_valid = not math.isnan(snr_db)
        in_outage = (
            distance_est_m is None
            or not snr_valid
            or snr_db < self.outage_snr_db
        )
        return MobileStep(
            time_s=t,
            distance_true_m=distance_true,
            distance_est_m=distance_est_m,
            uplink_snr_db=float(snr_db) if snr_valid else None,
            uplink_ber=uplink.ber,
            blockage_loss_db=loss,
            in_outage=in_outage,
        )
