"""2-D geometry for the MilBack scene model.

The paper evaluates localization in a 2-D plane (range + azimuth), so the
world model is planar. Angles follow the AP-centric convention used in the
paper's figures:

* the AP sits at the origin looking along +x (its "boresight");
* azimuth of a point is measured from the AP boresight,
  counter-clockwise positive, in degrees;
* a node's *orientation* is the angle between the node's FSA broadside and
  the node→AP direction (0° = node facing the AP squarely).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "Point2D",
    "Pose2D",
    "deg_to_rad",
    "rad_to_deg",
    "wrap_angle_rad",
    "wrap_angle_deg",
    "angle_between_deg",
]


def deg_to_rad(deg: float) -> float:
    """Degrees to radians."""
    return deg * math.pi / 180.0


def rad_to_deg(rad: float) -> float:
    """Radians to degrees."""
    return rad * 180.0 / math.pi


def wrap_angle_rad(angle: float) -> float:
    """Wrap an angle to (-pi, pi]."""
    wrapped = math.fmod(angle + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


def wrap_angle_deg(angle: float) -> float:
    """Wrap an angle to (-180, 180]."""
    return rad_to_deg(wrap_angle_rad(deg_to_rad(angle)))


def angle_between_deg(a: float, b: float) -> float:
    """Smallest signed difference ``a - b`` wrapped to (-180, 180]."""
    return wrap_angle_deg(a - b)


@dataclass(frozen=True)
class Point2D:
    """A point in the 2-D scene plane, in meters."""

    x: float
    y: float

    def distance_to(self, other: "Point2D") -> float:
        """Euclidean distance to ``other`` [m]."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def azimuth_to(self, other: "Point2D") -> float:
        """Azimuth of ``other`` as seen from this point, degrees CCW from +x."""
        return rad_to_deg(math.atan2(other.y - self.y, other.x - self.x))

    def translated(self, dx: float, dy: float) -> "Point2D":
        """A copy shifted by (dx, dy)."""
        return Point2D(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """(x, y) tuple, convenient for numpy interop."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Pose2D:
    """A position plus a facing direction.

    ``heading_deg`` is the direction the device's broadside points,
    degrees CCW from the +x axis.
    """

    position: Point2D
    heading_deg: float = 0.0

    @classmethod
    def at(cls, x: float, y: float, heading_deg: float = 0.0) -> "Pose2D":
        """Build a pose from raw coordinates."""
        return cls(Point2D(x, y), heading_deg)

    def distance_to(self, other: "Pose2D") -> float:
        """Distance between the two poses' positions [m]."""
        return self.position.distance_to(other.position)

    def bearing_to(self, other: "Pose2D") -> float:
        """World-frame azimuth of ``other`` from this pose [deg]."""
        return self.position.azimuth_to(other.position)

    def relative_bearing_to(self, other: "Pose2D") -> float:
        """Azimuth of ``other`` relative to this pose's heading [deg].

        This is the angle a beam must steer off broadside to face ``other``;
        for a node it is exactly the paper's "orientation with respect to
        the AP".
        """
        return wrap_angle_deg(self.bearing_to(other) - self.heading_deg)

    def rotated(self, delta_deg: float) -> "Pose2D":
        """A copy rotated in place by ``delta_deg``."""
        return Pose2D(self.position, wrap_angle_deg(self.heading_deg + delta_deg))

    def moved_to(self, x: float, y: float) -> "Pose2D":
        """A copy relocated to (x, y) keeping the heading."""
        return Pose2D(Point2D(x, y), self.heading_deg)
