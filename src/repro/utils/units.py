"""Unit conversions used throughout the RF stack.

All functions accept scalars or numpy arrays and return the same shape.
Power quantities follow RF conventions: dB for ratios, dBm referenced to
1 mW, dBi for antenna gain over isotropic.
"""

from __future__ import annotations

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "db_to_power_ratio",
    "power_ratio_to_db",
    "volts_to_dbv",
    "wavelength",
    "frequency_from_wavelength",
]

#: Floor used when converting zero/negative power to dB, to avoid -inf
#: surprising downstream consumers. Roughly -600 dB, far below any physical
#: noise floor in this package.
_POWER_FLOOR_W = 1e-60


def db_to_linear(db):
    """Convert a dB *power* ratio to a linear power ratio."""
    return np.power(10.0, np.asarray(db, dtype=float) / 10.0)


def linear_to_db(ratio):
    """Convert a linear *power* ratio to dB.

    Non-positive inputs are clamped to a tiny floor instead of producing
    ``-inf``/NaN, because measured powers of exactly zero occur in
    simulations (e.g. a perfectly absorbed tone).
    """
    ratio = np.asarray(ratio, dtype=float)
    return 10.0 * np.log10(np.maximum(ratio, _POWER_FLOOR_W))


# dB and power-ratio aliases with more explicit names, used where the code
# reads better spelled out.
db_to_power_ratio = db_to_linear
power_ratio_to_db = linear_to_db


def dbm_to_watts(dbm):
    """Convert power in dBm to watts."""
    return 1e-3 * db_to_linear(dbm)


def watts_to_dbm(watts):
    """Convert power in watts to dBm (clamped at a -600 dBm-ish floor)."""
    return linear_to_db(np.asarray(watts, dtype=float) / 1e-3)


def volts_to_dbv(volts):
    """Convert an RMS voltage to dBV (20 log10)."""
    volts = np.abs(np.asarray(volts, dtype=float))
    return 20.0 * np.log10(np.maximum(volts, 1e-30))


def wavelength(frequency_hz):
    """Free-space wavelength [m] for a frequency [Hz]."""
    frequency_hz = np.asarray(frequency_hz, dtype=float)
    if np.any(frequency_hz <= 0):
        raise ConfigurationError("frequency must be positive")
    return SPEED_OF_LIGHT / frequency_hz


def frequency_from_wavelength(wavelength_m):
    """Frequency [Hz] for a free-space wavelength [m]."""
    wavelength_m = np.asarray(wavelength_m, dtype=float)
    if np.any(wavelength_m <= 0):
        raise ConfigurationError("wavelength must be positive")
    return SPEED_OF_LIGHT / wavelength_m
