"""Shared utilities: unit conversions, geometry, statistics and RNG plumbing."""

from repro.utils.units import (
    db_to_linear,
    linear_to_db,
    dbm_to_watts,
    watts_to_dbm,
    db_to_power_ratio,
    power_ratio_to_db,
    volts_to_dbv,
    wavelength,
    frequency_from_wavelength,
)
from repro.utils.geometry import (
    Pose2D,
    Point2D,
    deg_to_rad,
    rad_to_deg,
    wrap_angle_rad,
    wrap_angle_deg,
    angle_between_deg,
)
from repro.utils.stats import (
    RunningStats,
    empirical_cdf,
    percentile,
    summarize_errors,
    ErrorSummary,
)
from repro.utils.rng import make_rng, spawn_rngs

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "db_to_power_ratio",  # milback: disable=ML014 — public unit-conversion helper
    "power_ratio_to_db",  # milback: disable=ML014 — public unit-conversion helper
    "volts_to_dbv",
    "wavelength",
    "frequency_from_wavelength",
    "Pose2D",
    "Point2D",
    "deg_to_rad",
    "rad_to_deg",
    "wrap_angle_rad",
    "wrap_angle_deg",
    "angle_between_deg",
    "RunningStats",
    "empirical_cdf",
    "percentile",
    "summarize_errors",
    "ErrorSummary",
    "make_rng",
    "spawn_rngs",
]
