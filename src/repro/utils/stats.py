"""Statistics helpers for experiment result reporting.

The paper reports mean, variance, 90th-percentile and CDFs of estimation
errors; this module provides those summaries in one place so every
experiment formats results identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "RunningStats",
    "empirical_cdf",
    "percentile",
    "summarize_errors",
    "ErrorSummary",
]


class RunningStats:
    """Welford's online mean/variance accumulator.

    Used by long sweeps so trial results never need to be held in memory
    all at once.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def push(self, value: float) -> None:
        """Add one observation."""
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Add many observations."""
        for value in values:
            self.push(value)

    @property
    def count(self) -> int:
        """Number of observations pushed."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with <2 observations)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest observation."""
        if not self._count:
            raise ConfigurationError("no observations")
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation."""
        if not self._count:
            raise ConfigurationError("no observations")
        return self._max


def empirical_cdf(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_probabilities)``.

    Probabilities are ``i/n`` for the i-th order statistic, matching the
    step-CDF plots in the paper's Figure 12b.
    """
    values = np.sort(np.asarray(values, dtype=float))
    if values.size == 0:
        raise ConfigurationError("empirical_cdf of empty sequence")
    probs = np.arange(1, values.size + 1) / values.size
    return values, probs


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) using linear interpolation."""
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile q={q} outside [0, 100]")
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass(frozen=True)
class ErrorSummary:
    """Summary statistics of a set of absolute estimation errors."""

    count: int
    mean: float
    std: float
    median: float
    p90: float
    maximum: float

    def as_row(self) -> dict[str, float]:
        """Flat dict, convenient for table rendering."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "median": self.median,
            "p90": self.p90,
            "max": self.maximum,
        }


def summarize_errors(errors: Sequence[float]) -> ErrorSummary:
    """Summarize absolute errors the way the paper's figures report them
    (mean, spread, 90th percentile)."""
    arr = np.abs(np.asarray(errors, dtype=float))
    if arr.size == 0:
        raise ConfigurationError("cannot summarize an empty error sequence")
    return ErrorSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        median=float(np.median(arr)),
        p90=percentile(arr, 90.0),
        maximum=float(arr.max()),
    )
