"""Seeded random-number-generator plumbing.

Every stochastic component in the simulator takes a ``numpy.random.Generator``
so experiments are reproducible end to end. These helpers centralize the
two patterns we need: make a generator from "whatever the caller gave us",
and split one generator into independent child streams.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro import obs
from repro.errors import ConfigurationError

__all__ = ["make_rng", "spawn_rngs", "indexed_rngs"]

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    Accepts ``None`` (fresh entropy), an integer seed, a ``SeedSequence``,
    or an existing ``Generator`` (returned unchanged so RNG state is shared
    deliberately, never copied by accident).

    Every *new* generator bumps the ``rng.generators.created`` counter
    (passed-through generators count separately): a metrics diff where
    that number moves for the same workload means the RNG plumbing — and
    therefore determinism — changed.
    """
    if isinstance(seed, np.random.Generator):
        obs.counter("rng.generators.passed_through").inc()
        return seed
    obs.counter("rng.generators.created").inc()
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Produce ``count`` statistically independent generators.

    Trials in a sweep each get their own stream, so reordering or
    parallelizing trials never changes any individual trial's draws.
    """
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    obs.counter("rng.spawn_rngs.calls").inc()
    obs.counter("rng.generators.created").inc(count)
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def indexed_rngs(seed: int, index: int, count: int) -> list[np.random.Generator]:
    """Derive row ``index``'s independent generators in O(1).

    ``SeedSequence(seed, spawn_key=(index,))`` is, by NumPy's spawning
    contract, the *same* sequence ``SeedSequence(seed).spawn(index + 1)[index]``
    would produce — but without materializing the first ``index``
    children. A corpus generator can therefore hand row *i* its streams
    directly, from any worker, in any order, at any chunking, and the
    draws match a serial front-to-back run bit for bit.
    """
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    if index < 0:
        raise ConfigurationError("index must be non-negative")
    obs.counter("rng.indexed_rngs.calls").inc()
    obs.counter("rng.generators.created").inc(count)
    row_seq = np.random.SeedSequence(seed, spawn_key=(index,))
    return [np.random.default_rng(child) for child in row_seq.spawn(count)]
