"""Configuration serialization: deployment files for nodes, APs and
calibration.

A fleet operator wants node/AP/calibration configurations in version
control, not in Python constructors. This module round-trips the
configuration dataclasses through plain dicts (JSON-ready): every value
is a number, string, bool, or nested dict, and ``from_dict`` validates
through the same dataclass ``__post_init__`` checks as the constructors.
"""

from __future__ import annotations

import json
from typing import Any

from repro.antennas.fixed import HornAntenna
from repro.antennas.fsa import FsaDesign
from repro.ap.config import ApConfig
from repro.dsp.waveforms import SawtoothChirp, TriangularChirp
from repro.errors import ConfigurationError
from repro.hardware.adc import Adc
from repro.hardware.envelope_detector import EnvelopeDetector
from repro.hardware.mcu import Microcontroller
from repro.hardware.switch import SpdtSwitch, SwitchState
from repro.node.config import NodeConfig
from repro.sim.calibration import Calibration

__all__ = [
    "calibration_to_dict",
    "calibration_from_dict",
    "node_config_to_dict",
    "node_config_from_dict",
    "ap_config_to_dict",
    "ap_config_from_dict",
    "save_json",
    "load_json",
]


# --- calibration (flat, frozen) -------------------------------------------------


def calibration_to_dict(calibration: Calibration) -> dict[str, float]:
    """All calibration constants as a flat dict."""
    return dict(vars(calibration))


def calibration_from_dict(data: dict[str, Any]) -> Calibration:
    """Rebuild a Calibration; unknown keys are rejected loudly."""
    known = set(Calibration.__dataclass_fields__)
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(f"unknown calibration keys: {sorted(unknown)}")
    return Calibration(**data)


# --- node configuration (nested) --------------------------------------------------


def _switch_to_dict(switch: SpdtSwitch) -> dict[str, Any]:
    return {
        "insertion_loss_db": switch.insertion_loss_db,
        "isolation_db": switch.isolation_db,
        "max_toggle_rate_hz": switch.max_toggle_rate_hz,
        "static_power_w": switch.static_power_w,
        "toggle_energy_j": switch.toggle_energy_j,
        "state": switch.state.value,
    }


def _switch_from_dict(data: dict[str, Any]) -> SpdtSwitch:
    state = SwitchState(data.pop("state", SwitchState.ABSORB.value))
    switch = SpdtSwitch(**data)
    switch.set_state(state)
    return switch


def _detector_to_dict(detector: EnvelopeDetector) -> dict[str, Any]:
    return {
        "responsivity_v_per_sqrt_w": detector.responsivity_v_per_sqrt_w,
        "video_bandwidth_hz": detector.video_bandwidth_hz,
        "output_noise_v_per_rt_hz": detector.output_noise_v_per_rt_hz,
        "input_impedance_ohm": detector.input_impedance_ohm,
        "power_draw_w": detector.power_draw_w,
    }


def _mcu_to_dict(mcu: Microcontroller) -> dict[str, Any]:
    return {
        "adc": {
            "sample_rate_hz": mcu.adc.sample_rate_hz,
            "n_bits": mcu.adc.n_bits,
            "full_scale_v": mcu.adc.full_scale_v,
        },
        "max_gpio_toggle_rate_hz": mcu.max_gpio_toggle_rate_hz,
        "active_power_w": mcu.active_power_w,
    }


def _mcu_from_dict(data: dict[str, Any]) -> Microcontroller:
    adc = Adc(**data.pop("adc"))
    return Microcontroller(adc=adc, **data)


def _fsa_to_dict(design: FsaDesign) -> dict[str, Any]:
    return {
        "n_elements": design.n_elements,
        "element_spacing_m": design.element_spacing_m,
        "feed_length_m": design.feed_length_m,
        "eps_eff": design.eps_eff,
        "space_harmonic": design.space_harmonic,
        "peak_gain_dbi": design.peak_gain_dbi,
        "feed_loss_np_per_m": design.feed_loss_np_per_m,
        "element_taper": design.element_taper,
    }


def node_config_to_dict(config: NodeConfig) -> dict[str, Any]:
    """Full node bill-of-materials as a nested dict."""
    return {
        "node_id": config.node_id,
        "fsa_design": _fsa_to_dict(config.fsa_design),
        "switch_a": _switch_to_dict(config.switch_a),
        "switch_b": _switch_to_dict(config.switch_b),
        "detector_a": _detector_to_dict(config.detector_a),
        "detector_b": _detector_to_dict(config.detector_b),
        "mcu": _mcu_to_dict(config.mcu),
    }


def node_config_from_dict(data: dict[str, Any]) -> NodeConfig:
    """Rebuild a NodeConfig from :func:`node_config_to_dict` output."""
    try:
        return NodeConfig(
            node_id=data["node_id"],
            fsa_design=FsaDesign(**data["fsa_design"]),
            switch_a=_switch_from_dict(dict(data["switch_a"])),
            switch_b=_switch_from_dict(dict(data["switch_b"])),
            detector_a=EnvelopeDetector(**data["detector_a"]),
            detector_b=EnvelopeDetector(**data["detector_b"]),
            mcu=_mcu_from_dict(dict(data["mcu"])),
        )
    except KeyError as missing:
        raise ConfigurationError(f"node config missing section {missing}") from None


# --- AP configuration ------------------------------------------------------------


def _horn_to_dict(horn: HornAntenna) -> dict[str, Any]:
    return {
        "peak_gain_dbi": horn.peak_gain_dbi,
        "beamwidth_deg": horn.beamwidth_deg,
        "sidelobe_floor_dbi": horn.sidelobe_floor_dbi,
    }


def ap_config_to_dict(config: ApConfig) -> dict[str, Any]:
    """The AP's deployment-relevant parameters as a nested dict.

    Instrument internals (PA/LNA/mixer/generator) keep their defaults on
    reload; what a site survey actually varies — powers, antennas, chirp
    plans, timing — round-trips.
    """
    return {
        "tx_power_dbm": config.tx_power_dbm,
        "tx_horn": _horn_to_dict(config.tx_horn),
        "rx_horn": _horn_to_dict(config.rx_horn),
        "ranging_chirp": {
            "start_hz": config.ranging_chirp.start_hz,
            "stop_hz": config.ranging_chirp.stop_hz,
            "duration_s": config.ranging_chirp.duration_s,
        },
        "field1_chirp": {
            "start_hz": config.field1_chirp.start_hz,
            "stop_hz": config.field1_chirp.stop_hz,
            "duration_s": config.field1_chirp.duration_s,
        },
        "n_ranging_chirps": config.n_ranging_chirps,
        "rx_baseline_m": config.rx_baseline_m,
        "chirp_repetition_interval_s": config.chirp_repetition_interval_s,
        "beat_sample_rate_hz": config.beat_sample_rate_hz,
    }


def ap_config_from_dict(data: dict[str, Any]) -> ApConfig:
    """Rebuild an ApConfig from :func:`ap_config_to_dict` output."""
    try:
        return ApConfig(
            tx_power_dbm=data["tx_power_dbm"],
            tx_horn=HornAntenna(**data["tx_horn"]),
            rx_horn=HornAntenna(**data["rx_horn"]),
            ranging_chirp=SawtoothChirp(**data["ranging_chirp"]),
            field1_chirp=TriangularChirp(**data["field1_chirp"]),
            n_ranging_chirps=data["n_ranging_chirps"],
            rx_baseline_m=data["rx_baseline_m"],
            chirp_repetition_interval_s=data["chirp_repetition_interval_s"],
            beat_sample_rate_hz=data["beat_sample_rate_hz"],
        )
    except KeyError as missing:
        raise ConfigurationError(f"AP config missing section {missing}") from None


# --- JSON convenience ---------------------------------------------------------------


def save_json(data: dict[str, Any], path: str) -> None:
    """Write a configuration dict as pretty JSON."""
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> dict[str, Any]:
    """Read a configuration dict from JSON."""
    with open(path) as handle:
        return json.load(handle)
