"""Battery and duty-cycle lifetime modeling.

The paper's 18/32 mW numbers are *active* power; a deployed node is
asleep almost always. This module turns the power budget plus a duty
cycle into the number an integrator actually asks for: how long does
the battery last at N reports per hour?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.power import NodeMode, PowerBudget

if False:  # pragma: no cover - type-checking alias without the import cycle
    from repro.protocol.packet import PacketSchedule

__all__ = ["Battery", "DutyCycledNode", "LifetimeEstimate"]

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_YEAR = 365.25 * SECONDS_PER_DAY


@dataclass(frozen=True)
class Battery:
    """An ideal-discharge battery with self-discharge.

    Defaults describe a CR2032 coin cell: 225 mAh at 3 V, ~1%/year
    self-discharge for lithium chemistry.
    """

    capacity_j: float = 0.225 * 3600.0 * 3.0  # 225 mAh x 3 V = 2430 J
    self_discharge_per_year: float = 0.01

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise ConfigurationError("battery capacity must be positive")
        if not 0.0 <= self.self_discharge_per_year < 1.0:
            raise ConfigurationError("self-discharge must be in [0, 1)")

    def self_discharge_w(self) -> float:
        """Average self-discharge drain [W]."""
        return self.capacity_j * self.self_discharge_per_year / SECONDS_PER_YEAR


@dataclass(frozen=True)
class LifetimeEstimate:
    """Output of a lifetime computation."""

    average_power_w: float
    lifetime_s: float
    reports_total: float

    @property
    def lifetime_years(self) -> float:
        return self.lifetime_s / SECONDS_PER_YEAR

    @property
    def lifetime_days(self) -> float:
        return self.lifetime_s / SECONDS_PER_DAY


class DutyCycledNode:
    """A node that wakes to exchange one packet, then sleeps."""

    def __init__(
        self,
        budget: PowerBudget,
        schedule: "PacketSchedule | None" = None,
        sleep_power_w: float = 2e-6,
        include_mcu_when_active: bool = True,
        mcu_power_w: float = 5.76e-3,
    ) -> None:
        """``sleep_power_w`` defaults to a 2 µW deep-sleep (MSP430 LPM3
        with RAM retention + RTC)."""
        if sleep_power_w < 0:
            raise ConfigurationError("sleep power cannot be negative")
        # Imported lazily: hardware must stay importable without the
        # protocol package (which itself imports hardware models).
        from repro.protocol.packet import PacketSchedule

        self.budget = budget
        self.schedule = schedule or PacketSchedule()
        self.sleep_power_w = sleep_power_w
        self.include_mcu_when_active = include_mcu_when_active
        self.mcu_power_w = mcu_power_w

    def report_energy_j(
        self,
        payload_bits: int,
        bit_rate_bps: float = 10e6,
        mode: NodeMode = NodeMode.UPLINK,
        wake_overhead_s: float = 1e-3,
    ) -> float:
        """Energy of one report: wake, preamble, payload, back to sleep.

        ``wake_overhead_s`` covers oscillator start-up and settling at
        active power before the packet begins.
        """
        if payload_bits <= 0:
            raise ConfigurationError("payload must carry bits")
        active_power = self.budget.total_power_w(mode)
        if self.include_mcu_when_active:
            active_power += self.mcu_power_w
        active_time = wake_overhead_s + self.schedule.packet_duration_s(
            payload_bits, bit_rate_bps
        )
        return active_power * active_time

    def lifetime(
        self,
        battery: Battery,
        reports_per_hour: float,
        payload_bits: int = 1024,
        bit_rate_bps: float = 10e6,
        mode: NodeMode = NodeMode.UPLINK,
    ) -> LifetimeEstimate:
        """How long the battery funds the reporting schedule."""
        if reports_per_hour <= 0:
            raise ConfigurationError("need a positive reporting rate")
        per_report = self.report_energy_j(payload_bits, bit_rate_bps, mode)
        report_power = per_report * reports_per_hour / 3600.0
        average = report_power + self.sleep_power_w + battery.self_discharge_w()
        lifetime_s = battery.capacity_j / average
        return LifetimeEstimate(
            average_power_w=average,
            lifetime_s=lifetime_s,
            reports_total=lifetime_s / 3600.0 * reports_per_hour,
        )
