"""AP waveform generator model (Keysight M9384B VXG-class, paper §8).

The real instrument spans at most 2 GHz of instantaneous bandwidth, so
the paper synthesizes its 3 GHz FMCW sweep by transmitting two 2 GHz
chirps centered at 27.25 and 28.75 GHz and patching the results together
(footnote 2). This model reproduces that constraint and the patching, so
any experiment that believes it used a 3 GHz sweep is in fact exercising
the same stitched structure the testbed did.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import VXG_MAX_SPAN_HZ
from repro.dsp.signal import Signal
from repro.dsp.waveforms import (
    SawtoothChirp,
    TriangularChirp,
    sawtooth_chirp,
    triangular_chirp,
    two_tone,
)
from repro.errors import ConfigurationError, HardwareError

__all__ = ["WaveformGenerator", "ChirpSegment"]


@dataclass(frozen=True)
class ChirpSegment:
    """One instrument-feasible chirp piece of a patched sweep."""

    config: SawtoothChirp
    signal: Signal


@dataclass
class WaveformGenerator:
    """Signal source with a maximum instantaneous span."""

    max_span_hz: float = VXG_MAX_SPAN_HZ
    sample_rate_hz: float = 4.0e9

    def __post_init__(self) -> None:
        if self.max_span_hz <= 0 or self.sample_rate_hz <= 0:
            raise HardwareError("spans and rates must be positive")

    def can_generate_span(self, bandwidth_hz: float) -> bool:
        """Whether a sweep fits in one instrument pass."""
        return bandwidth_hz <= self.max_span_hz

    def sawtooth_segments(self, config: SawtoothChirp) -> list[ChirpSegment]:
        """Generate a sawtooth sweep, split into instrument-feasible
        segments when wider than ``max_span_hz``.

        Each segment sweeps an equal share of the band in an equal share
        of the chirp duration, so the overall slope — the quantity FMCW
        processing depends on — is identical to the ideal single sweep.
        """
        if self.can_generate_span(config.bandwidth_hz):
            return [
                ChirpSegment(config, sawtooth_chirp(config, self.sample_rate_hz))
            ]
        n_segments = int(-(-config.bandwidth_hz // self.max_span_hz))  # ceil
        edges = [
            config.start_hz + i * config.bandwidth_hz / n_segments
            for i in range(n_segments + 1)
        ]
        segment_duration = config.duration_s / n_segments
        segments = []
        for i in range(n_segments):
            sub = SawtoothChirp(edges[i], edges[i + 1], segment_duration)
            signal = sawtooth_chirp(sub, self.sample_rate_hz)
            segments.append(
                ChirpSegment(sub, signal.delayed(i * segment_duration))
            )
        return segments

    def patched_sweep(self, config: SawtoothChirp) -> Signal:
        """The full sweep, patched from segments onto one baseband grid.

        Segments are retuned to the common sweep center and laid end to
        end — the digital twin of the paper's "transmit two 2 GHz chirps
        and patch the results together".
        """
        segments = self.sawtooth_segments(config)
        if len(segments) == 1:
            return segments[0].signal
        pieces = [
            seg.signal.retuned(config.center_hz) for seg in segments
        ]
        out = pieces[0]
        for piece in pieces[1:]:
            out = out.concatenated(piece)
        return out

    def triangular(self, config: TriangularChirp, n_chirps: int = 1) -> Signal:
        """A triangular chirp train (Field 1 preamble waveform).

        Triangular chirps are only used for node-side sensing where the
        node's envelope detector cannot tell segments apart, so span
        patching applies the same way; for simplicity the triangular
        waveform is generated directly (its two legs each fit the span
        constraint check below).
        """
        if config.bandwidth_hz > 2 * self.max_span_hz:
            raise ConfigurationError(
                "triangular sweep bandwidth exceeds what two patched "
                "instrument passes can cover"
            )
        return triangular_chirp(config, self.sample_rate_hz, n_chirps=n_chirps)

    def two_tone_query(
        self,
        freq_a_hz: float,
        freq_b_hz: float,
        duration_s: float,
        amplitude_a: float = 1.0,
        amplitude_b: float = 1.0,
        center_frequency_hz: float | None = None,
    ) -> Signal:
        """The OAQFM two-tone query cos(2πf_A t) + cos(2πf_B t)."""
        if abs(freq_a_hz - freq_b_hz) > self.max_span_hz:
            raise ConfigurationError(
                f"tone separation {abs(freq_a_hz-freq_b_hz)/1e9:.2f} GHz exceeds "
                f"the generator span {self.max_span_hz/1e9:.2f} GHz"
            )
        center_hz = (
            0.5 * (freq_a_hz + freq_b_hz)
            if center_frequency_hz is None
            else center_frequency_hz
        )
        return two_tone(
            freq_a_hz,
            freq_b_hz,
            duration_s,
            self.sample_rate_hz,
            amplitude_a,
            amplitude_b,
            center_hz,
        )
