"""Envelope (power) detector model — ADL6010-class (paper §8).

The ADL6010 is a *linear-responding* envelope detector: its output
voltage is proportional to the input RF **amplitude** (not power) over
its useful range, with a 50 Ω matched input — which is what makes the
FSA port absorb when routed here. The behavioural model keeps the three
properties MilBack depends on:

* linear amplitude response with a responsivity constant;
* a first-order video output filter whose bandwidth sets the rise/fall
  time (this is the 36 Mbps downlink ceiling, §9.4);
* additive output noise with a flat density (thermal + detector shot
  noise, lumped), which sets the node's downlink sensitivity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import faults
from repro.dsp.filters import single_pole_lowpass
from repro.dsp.signal import Signal
from repro.errors import HardwareError
from repro.hardware.power import ComponentPower, NodeMode
from repro.utils.rng import RngLike, make_rng

__all__ = ["EnvelopeDetector"]


@dataclass
class EnvelopeDetector:
    """Behavioural linear envelope detector.

    Attributes:
        responsivity_v_per_sqrt_w: output volts per sqrt(input watt);
            with the package convention |sample| = sqrt(P), the output is
            simply responsivity × |v_in|.
        video_bandwidth_hz: first-order output filter bandwidth. The
            default 40 MHz supports the paper's 36 Mbps downlink and
            gives t_rise ≈ 0.35/BW ≈ 8.8 ns.
        output_noise_v_per_rt_hz: flat output noise density.
        input_impedance_ohm: matched to the FSA port (50 Ω), making the
            absorb branch reflectionless.
        power_draw_w: bias draw (always on while the node listens).
    """

    responsivity_v_per_sqrt_w: float = 2.0
    video_bandwidth_hz: float = 40e6
    output_noise_v_per_rt_hz: float = 213e-9
    input_impedance_ohm: float = 50.0
    power_draw_w: float = 8.0e-3

    def __post_init__(self) -> None:
        if self.responsivity_v_per_sqrt_w <= 0:
            raise HardwareError("responsivity must be positive")
        if self.video_bandwidth_hz <= 0:
            raise HardwareError("video bandwidth must be positive")
        if self.output_noise_v_per_rt_hz < 0:
            raise HardwareError("noise density must be non-negative")

    def rise_time_s(self) -> float:
        """10–90% rise time of the video output."""
        return 0.35 / self.video_bandwidth_hz

    #: Fraction of the video bandwidth usable as symbol rate once both the
    #: rise and the fall must settle within a symbol. 0.45 reproduces the
    #: paper's measured 36 Mbps OAQFM ceiling at 40 MHz video bandwidth.
    SETTLING_FACTOR = 0.45

    def max_symbol_rate_hz(self) -> float:
        """Fastest symbol rate whose levels settle at the output."""
        return self.SETTLING_FACTOR * self.video_bandwidth_hz

    def max_bit_rate_bps(self, bits_per_symbol: int = 2) -> float:
        """Downlink bit-rate ceiling (2 bits/symbol under OAQFM).

        2 × 0.45 × 40 MHz = 36 Mbps — the paper's detector-limited
        maximum (§9.4).
        """
        if bits_per_symbol < 1:
            raise HardwareError("bits_per_symbol must be >= 1")
        return bits_per_symbol * self.max_symbol_rate_hz()

    def output_noise_sigma_v(self) -> float:
        """RMS output noise over the video bandwidth [V]."""
        return self.output_noise_v_per_rt_hz * math.sqrt(self.video_bandwidth_hz)

    def detect(self, rf_input: Signal, rng: RngLike = None) -> Signal:
        """Convert an RF signal into the detector's video output voltage.

        Output = responsivity × |v_in|, low-pass filtered by the video
        bandwidth, plus output-referred Gaussian noise. The result is a
        real baseband :class:`Signal` in volts.
        """
        if rf_input.samples.size == 0:
            raise HardwareError("empty RF input")
        fs_hz = rf_input.sample_rate_hz
        envelope_v = self.responsivity_v_per_sqrt_w * np.abs(rf_input.samples)
        envelope_v = faults.detector_output(envelope_v)
        envelope = Signal(
            envelope_v.astype(np.complex128),
            fs_hz,
            0.0,
            rf_input.start_time_s,
        )
        filtered = single_pole_lowpass(envelope, self.video_bandwidth_hz)
        rng = make_rng(rng)
        # White noise sampled at fs_hz, then band-limited the same way the
        # signal is, so the in-band density equals the spec value.
        raw_sigma = self.output_noise_v_per_rt_hz * math.sqrt(fs_hz / 2.0)
        noise = Signal(
            raw_sigma * rng.standard_normal(len(filtered)).astype(np.complex128),
            fs_hz,
            0.0,
            filtered.start_time_s,
        )
        noisy = filtered + single_pole_lowpass(noise, self.video_bandwidth_hz)
        # Output stays real: keep the real part only.
        return Signal(
            noisy.samples.real.astype(np.complex128),
            fs_hz,
            0.0,
            noisy.start_time_s,
        )

    def output_voltage_for_power(self, input_power_w: float) -> float:
        """Steady-state output for a CW input of the given power."""
        if input_power_w < 0:
            raise HardwareError("power must be non-negative")
        return self.responsivity_v_per_sqrt_w * math.sqrt(input_power_w)

    def power_model(self) -> ComponentPower:
        """Per-mode power entry: the detector is biased whenever the node
        is awake (it is the node's only receiver)."""
        return ComponentPower(
            name="envelope-detector",
            draw_w={
                NodeMode.IDLE: self.power_draw_w,
                NodeMode.LOCALIZATION: self.power_draw_w,
                NodeMode.DOWNLINK: self.power_draw_w,
                NodeMode.UPLINK: self.power_draw_w,
            },
        )
