"""Node micro-controller model (MSP430FR6989-class, paper §8).

The MCU does three things: sample the two envelope detectors through its
ADC, drive the two switches through GPIOs, and run the tiny firmware
state machine. Its constraints — 1 MHz ADC, bounded GPIO toggle rate —
shape the protocol (slow Field-1 chirps) and bound the uplink rate
together with the switch settling time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import MCU_POWER_W, NODE_ADC_RATE_HZ
from repro.dsp.signal import Signal
from repro.errors import HardwareError
from repro.hardware.adc import Adc

__all__ = ["Microcontroller"]


@dataclass
class Microcontroller:
    """Behavioural MCU: ADC front end + GPIO timing + power."""

    adc: Adc = field(default_factory=lambda: Adc(sample_rate_hz=NODE_ADC_RATE_HZ))
    max_gpio_toggle_rate_hz: float = 100e6
    active_power_w: float = MCU_POWER_W

    def __post_init__(self) -> None:
        if self.max_gpio_toggle_rate_hz <= 0:
            raise HardwareError("GPIO toggle rate must be positive")

    def sample_detector(self, detector_output: Signal) -> Signal:
        """Digitize one envelope-detector output stream."""
        return self.adc.sample(detector_output)

    def check_switching_rate(self, rate_hz: float) -> None:
        """Verify the firmware can drive the switches at ``rate_hz``."""
        if rate_hz > self.max_gpio_toggle_rate_hz:
            raise HardwareError(
                f"GPIO cannot toggle at {rate_hz/1e6:.1f} MHz "
                f"(limit {self.max_gpio_toggle_rate_hz/1e6:.1f} MHz)"
            )

    def max_uplink_bit_rate_bps(self, switch_rate_limit_hz: float) -> float:
        """Uplink ceiling: 2 bits per toggle interval across two ports,
        bounded by the slower of GPIO and switch settling."""
        per_port = min(self.max_gpio_toggle_rate_hz, switch_rate_limit_hz)
        return 2.0 * per_port
