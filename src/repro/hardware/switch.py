"""SPDT RF switch model (ADRF5020-class, paper §8).

Each FSA port's switch routes the port either to ground (reflective) or
to the envelope detector (absorptive). The model captures the three
behaviours that matter to MilBack:

* insertion loss / reflection efficiency — how much of the incident tone
  actually returns in reflective mode;
* isolation — how much leaks to the detector while reflecting;
* maximum toggle rate — the 160 Mbps uplink ceiling (§9.5) — and the
  rate-dependent power draw behind the 32 mW uplink figure (§9.6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import faults
from repro.errors import HardwareError
from repro.hardware.power import ComponentPower, NodeMode

__all__ = ["SwitchState", "SpdtSwitch"]


class SwitchState(enum.Enum):
    """Where the FSA port is routed."""

    REFLECT = "reflect"  # port shorted to ground plane
    ABSORB = "absorb"    # port matched into the envelope detector


@dataclass
class SpdtSwitch:
    """Behavioural SPDT switch.

    Attributes:
        insertion_loss_db: loss through the switch per pass.
        isolation_db: leakage suppression to the off branch.
        max_toggle_rate_hz: fastest sustainable state-toggle rate; the
            ADRF5020 settles in ~6 ns, supporting 80 M toggles/s per port
            (2 ports × 80 M × 1 bit = the paper's 160 Mbps ceiling).
        static_power_w: bias draw when idle.
        toggle_energy_j: energy per state change (drives uplink power).
    """

    insertion_loss_db: float = 1.0
    isolation_db: float = 30.0
    max_toggle_rate_hz: float = 80e6
    static_power_w: float = 1.0e-3
    toggle_energy_j: float = 350e-12

    state: SwitchState = SwitchState.ABSORB

    def __post_init__(self) -> None:
        if self.insertion_loss_db < 0 or self.isolation_db < 0:
            raise HardwareError("losses must be non-negative")
        if self.max_toggle_rate_hz <= 0:
            raise HardwareError("toggle rate must be positive")

    def set_state(self, state: SwitchState) -> None:
        """Route the port."""
        self.state = state

    def reflection_amplitude(self) -> float:
        """Field reflection coefficient of the FSA port through the switch.

        REFLECT: a short circuit reflects fully, minus two passes of
        insertion loss. ABSORB: the detector's matched 50 Ω absorbs the
        wave; only the finite isolation leaks back. An active
        switch-stuck fault plan pulls the returned amplitude toward the
        opposite state (see docs/ROBUSTNESS.md).
        """
        reflect_amp = 10.0 ** (-2.0 * self.insertion_loss_db / 20.0)
        absorb_amp = 10.0 ** (-self.isolation_db / 20.0)
        amplitude = reflect_amp if self.state is SwitchState.REFLECT else absorb_amp
        return faults.switch_reflection(amplitude, reflect_amp, absorb_amp)

    def through_amplitude(self) -> float:
        """Field transmission toward the detector branch."""
        if self.state is SwitchState.ABSORB:
            return 10.0 ** (-self.insertion_loss_db / 20.0)
        return 10.0 ** (-self.isolation_db / 20.0)

    def check_toggle_rate(self, rate_hz: float) -> None:
        """Raise when asked to toggle faster than the part can settle."""
        if rate_hz > self.max_toggle_rate_hz:
            raise HardwareError(
                f"toggle rate {rate_hz/1e6:.1f} MHz exceeds the switch limit "
                f"{self.max_toggle_rate_hz/1e6:.1f} MHz"
            )

    def power_draw_w(self, toggle_rate_hz: float = 0.0) -> float:
        """Average draw at a sustained toggle rate."""
        self.check_toggle_rate(toggle_rate_hz)
        return self.static_power_w + self.toggle_energy_j * toggle_rate_hz

    def power_model(self, uplink_toggle_rate_hz: float = 20e6) -> ComponentPower:
        """Per-mode power entry for the node budget.

        Localization toggles at 10 kHz (negligible dynamic power);
        downlink holds the switch static; uplink toggles at the symbol
        rate per port (20 MHz at the paper's 40 Mbps OAQFM reference).
        """
        return ComponentPower(
            name="spdt-switch",
            draw_w={
                NodeMode.IDLE: self.static_power_w,
                NodeMode.LOCALIZATION: self.power_draw_w(10e3),
                NodeMode.DOWNLINK: self.static_power_w,
                NodeMode.UPLINK: self.power_draw_w(uplink_toggle_rate_hz),
            },
        )
