"""Behavioural hardware models for the node and AP components."""

from repro.hardware.power import NodeMode, ComponentPower, PowerBudget, EnergyReport
from repro.hardware.switch import SwitchState, SpdtSwitch
from repro.hardware.envelope_detector import EnvelopeDetector
from repro.hardware.amplifier import Amplifier, default_pa, default_lna
from repro.hardware.adc import Adc
from repro.hardware.mcu import Microcontroller
from repro.hardware.mixer_rf import RfMixer
from repro.hardware.waveform_generator import WaveformGenerator, ChirpSegment
from repro.hardware.energy import Battery, DutyCycledNode, LifetimeEstimate

__all__ = [
    "NodeMode",
    "ComponentPower",
    "PowerBudget",
    "EnergyReport",  # milback: disable=ML014 — public hardware model surface
    "SwitchState",
    "SpdtSwitch",
    "EnvelopeDetector",
    "Amplifier",
    "default_pa",
    "default_lna",
    "Adc",
    "Microcontroller",
    "RfMixer",
    "WaveformGenerator",
    "ChirpSegment",  # milback: disable=ML014 — public hardware model surface
    "Battery",
    "DutyCycledNode",
    "LifetimeEstimate",  # milback: disable=ML014 — public hardware model surface
]
