"""ADC models: the node MCU's ADC and the AP's oscilloscope capture.

Quantization and sample-rate limits are what force the paper's design
choices — Field 1 chirps are 2.5× slower than Field 2 chirps *because*
the MSP430's ADC samples at only 1 MHz (§8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import faults, obs
from repro.dsp.signal import Signal
from repro.errors import HardwareError

__all__ = ["Adc"]


@dataclass(frozen=True)
class Adc:
    """Uniform quantizing ADC with a fixed sample rate and input range."""

    sample_rate_hz: float
    n_bits: int = 12
    full_scale_v: float = 1.2

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise HardwareError("ADC sample rate must be positive")
        if not 1 <= self.n_bits <= 24:
            raise HardwareError("ADC resolution must be 1..24 bits")
        if self.full_scale_v <= 0:
            raise HardwareError("full scale must be positive")

    @property
    def lsb_v(self) -> float:
        """One quantization step [V]."""
        return self.full_scale_v / (2**self.n_bits)

    def sample(self, analog: Signal) -> Signal:
        """Decimate the analog (real) waveform onto the ADC grid and
        quantize.

        Values beyond the unipolar range [0, full_scale] clip — the same
        overrange behaviour as the real converter. Overrange samples are
        counted into the ``hardware.adc.clipped_samples`` obs counter and
        the clip fraction is exposed as ``clip_fraction`` on the returned
        signal's metadata, so saturation (natural or injected) is visible
        without re-deriving it downstream.
        """
        if analog.samples.size == 0:
            raise HardwareError("empty analog input")
        if analog.sample_rate_hz < self.sample_rate_hz:
            raise HardwareError(
                "analog waveform is sampled more coarsely than the ADC rate; "
                "generate the simulation at a finer step"
            )
        step = analog.sample_rate_hz / self.sample_rate_hz
        idx = np.round(np.arange(0, analog.samples.size, step)).astype(int)
        idx = idx[idx < analog.samples.size]
        values = analog.samples[idx].real
        values = faults.adc_input(values)
        n_clipped = int(np.count_nonzero((values < 0.0) | (values > self.full_scale_v)))
        if n_clipped > 0:
            obs.counter("hardware.adc.clipped_samples").inc(n_clipped)
        clipped = np.clip(values, 0.0, self.full_scale_v)
        codes = np.round(clipped / self.lsb_v)
        codes = faults.adc_codes(codes, self.n_bits)
        quantized = codes * self.lsb_v
        return Signal(
            quantized.astype(np.complex128),
            self.sample_rate_hz,
            0.0,
            analog.start_time_s,
            metadata={"clip_fraction": n_clipped / values.size},
        )
