"""Power and energy accounting for the MilBack node (paper §9.6).

Each behavioural component reports its draw per operating state; the
:class:`PowerBudget` sums them over a protocol phase and converts to
energy-per-bit, reproducing the paper's headline numbers: 18 mW during
localization/downlink, 32 mW during uplink, 0.5 / 0.8 nJ/bit, versus
mmTag's 2.4 nJ/bit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["NodeMode", "ComponentPower", "PowerBudget", "EnergyReport"]


class NodeMode(enum.Enum):
    """Operating phases of a MilBack node."""

    IDLE = "idle"
    LOCALIZATION = "localization"
    DOWNLINK = "downlink"
    UPLINK = "uplink"


@dataclass(frozen=True)
class ComponentPower:
    """Power draw of one component across node modes [W]."""

    name: str
    draw_w: dict[NodeMode, float]

    def __post_init__(self) -> None:
        for mode, watts in self.draw_w.items():
            if watts < 0:
                raise ConfigurationError(f"{self.name}: negative power in {mode}")

    def in_mode(self, mode: NodeMode) -> float:
        """Draw in ``mode`` [W] (0 when the mode is not listed)."""
        return self.draw_w.get(mode, 0.0)


@dataclass(frozen=True)
class EnergyReport:
    """Energy summary for one communication mode."""

    mode: NodeMode
    power_w: float
    data_rate_bps: float
    energy_per_bit_j: float


@dataclass
class PowerBudget:
    """Aggregates component draws into mode totals and energy metrics."""

    components: list[ComponentPower] = field(default_factory=list)
    include_mcu: bool = False
    mcu_power_w: float = 5.76e-3

    def add(self, component: ComponentPower) -> None:
        """Register a component."""
        self.components.append(component)

    def total_power_w(self, mode: NodeMode) -> float:
        """Total node draw in ``mode``.

        The paper excludes the MCU from its 18/32 mW figures (footnote 3)
        because host devices already have one; ``include_mcu`` restores
        it.
        """
        total = sum(c.in_mode(mode) for c in self.components)
        if self.include_mcu:
            total += self.mcu_power_w
        return total

    def energy_per_bit_j(self, mode: NodeMode, data_rate_bps: float) -> float:
        """Energy per bit at the given data rate [J/bit]."""
        if data_rate_bps <= 0:
            raise ConfigurationError("data rate must be positive")
        return self.total_power_w(mode) / data_rate_bps

    def report(self, mode: NodeMode, data_rate_bps: float) -> EnergyReport:
        """A full :class:`EnergyReport` for one mode."""
        power = self.total_power_w(mode)
        return EnergyReport(
            mode=mode,
            power_w=power,
            data_rate_bps=data_rate_bps,
            energy_per_bit_j=power / data_rate_bps,
        )

    def breakdown(self, mode: NodeMode) -> dict[str, float]:
        """Per-component-type draw in ``mode`` [W]; same-named components
        (the two switches, the two detectors) are summed."""
        table: dict[str, float] = {}
        for component in self.components:
            table[component.name] = table.get(component.name, 0.0) + component.in_mode(mode)
        if self.include_mcu:
            table["mcu"] = table.get("mcu", 0.0) + self.mcu_power_w
        return table
