"""AP receive mixer model (Mini-Circuits ZMDB-44H-K+-class, paper §8).

The AP multiplies each RX branch by one transmitted query tone; delayed
copies of the tone (self-interference, clutter) land at DC, the node's
switched modulation lands at the baseband symbol rate (paper Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsp.mixing import mix_with_tone
from repro.dsp.signal import Signal
from repro.errors import HardwareError

__all__ = ["RfMixer"]


@dataclass(frozen=True)
class RfMixer:
    """Downconverting mixer with conversion loss.

    The complex-baseband multiply creates none of the sum/image products
    a diode mixer does — those are exactly the terms the paper's BPF
    removes — so conversion loss is the only non-ideality retained.
    """

    conversion_loss_db: float = 7.0

    def __post_init__(self) -> None:
        if self.conversion_loss_db < 0:
            raise HardwareError("conversion loss cannot be negative")

    def downconvert_with_tone(self, rf: Signal, tone_frequency_hz: float) -> Signal:
        """Mix ``rf`` against a LO at ``tone_frequency_hz``."""
        mixed = mix_with_tone(rf, tone_frequency_hz)
        return mixed.with_gain_db(-self.conversion_loss_db)
