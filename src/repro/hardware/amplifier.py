"""Amplifier models: the AP's PA (ADPA7005) and LNAs (ADL8142), paper §8.

Behavioural level: gain, noise figure, and output compression. Noise is
injected input-referred so cascades compose per the Friis noise formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dsp.noise import thermal_noise_power_w
from repro.dsp.signal import Signal
from repro.errors import HardwareError
from repro.utils.rng import RngLike, make_rng

__all__ = ["Amplifier", "default_pa", "default_lna"]


@dataclass
class Amplifier:
    """Gain block with noise figure and a soft output-power limit."""

    gain_db: float
    noise_figure_db: float = 0.0
    output_p1db_dbm: float = math.inf
    name: str = "amp"

    def __post_init__(self) -> None:
        if self.noise_figure_db < 0:
            raise HardwareError("noise figure cannot be negative")

    def amplify(self, signal: Signal, rng: RngLike = None) -> Signal:
        """Apply gain, add input-referred thermal noise, clip at P1dB.

        Added noise power = kT·fs·(F−1) at the input, i.e. the excess the
        amplifier contributes beyond the source noise already present.
        """
        rng = make_rng(rng)
        f_linear = 10.0 ** (self.noise_figure_db / 10.0)
        excess = max(f_linear - 1.0, 0.0)
        noise_power = thermal_noise_power_w(signal.sample_rate_hz) * excess
        sigma = math.sqrt(noise_power / 2.0)
        noise = sigma * (
            rng.standard_normal(len(signal)) + 1j * rng.standard_normal(len(signal))
        )
        amplified = (signal.samples + noise) * 10.0 ** (self.gain_db / 20.0)
        amplified = self._soft_clip(amplified)
        return Signal(
            amplified,
            signal.sample_rate_hz,
            signal.center_frequency_hz,
            signal.start_time_s,
        )

    def _soft_clip(self, samples: np.ndarray) -> np.ndarray:
        if not math.isfinite(self.output_p1db_dbm):
            return samples
        # Saturate smoothly ~1 dB above P1dB using a tanh envelope limiter.
        p_sat_w = 1e-3 * 10.0 ** ((self.output_p1db_dbm + 1.0) / 10.0)
        a_sat = math.sqrt(p_sat_w)
        mags = np.abs(samples)
        limited = a_sat * np.tanh(mags / a_sat)
        scale = np.where(mags > 0, limited / np.maximum(mags, 1e-30), 1.0)
        return samples * scale


def default_pa() -> Amplifier:
    """ADPA7005-class power amplifier driving the AP's TX horn."""
    return Amplifier(gain_db=15.0, noise_figure_db=6.0, output_p1db_dbm=33.0, name="pa")


def default_lna() -> Amplifier:
    """ADL8142-class low-noise amplifier on each AP RX chain."""
    return Amplifier(gain_db=20.0, noise_figure_db=3.3, output_p1db_dbm=10.0, name="lna")
