"""Frequency Scanning Antenna (FSA) model.

An FSA is a series-fed array: the feed line delays the excitation of each
successive element by a frequency-dependent phase, so the direction of
constructive combination — the beam — scans with frequency (paper §2,
Fig. 1). This module models exactly that physics:

* inter-element feed phase  ψ(f) = 2π f ℓ √ε_eff / c
* beam direction            sin θ(f) = ℓ√ε_eff/d − m·c/(f·d)
* gain pattern              element factor × array factor with an
  exponential feed-loss taper.

The paper's HFSS-simulated dual-port FSA (Fig. 10) scans ≈60° of azimuth
over 26.5–29.5 GHz with >10 dBi beams; :meth:`FsaDesign.from_scan` solves
the geometry that reproduces that dispersion, and the defaults land
within a fraction of a dB of the figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import (
    BAND_START_HZ,
    BAND_STOP_HZ,
    FSA_PEAK_GAIN_DBI,
    SPEED_OF_LIGHT,
)
from repro.errors import ConfigurationError

__all__ = ["FsaDesign", "FsaPort", "FrequencyScanningAntenna"]


@dataclass(frozen=True)
class FsaDesign:
    """Geometry and electrical parameters of a series-fed FSA.

    Attributes:
        n_elements: number of radiating elements.
        element_spacing_m: physical spacing d between elements.
        feed_length_m: meandered feed-line length ℓ between elements.
        eps_eff: effective permittivity of the feed line (sets dispersion).
        space_harmonic: the integer m in the beam equation; series-fed
            microstrip FSAs radiate on a higher-order harmonic, which is
            what compresses 60° of scan into 3 GHz.
        peak_gain_dbi: broadside-equivalent peak gain used to normalize
            the array factor (Fig. 10 shows ≈13 dBi).
        feed_loss_np_per_m: ohmic feed-line attenuation (amplitude taper).
        element_taper: "cosine" applies a raised-cosine amplitude taper
            across the elements (low sidelobes, the published design
            choice for series-fed patch FSAs); "uniform" disables it.
    """

    n_elements: int = 24
    element_spacing_m: float = 3.45e-3
    feed_length_m: float = 12.9e-3
    eps_eff: float = 6.25
    space_harmonic: int = 3
    peak_gain_dbi: float = FSA_PEAK_GAIN_DBI
    feed_loss_np_per_m: float = 1.5
    element_taper: str = "cosine"

    def __post_init__(self) -> None:
        if self.n_elements < 2:
            raise ConfigurationError("FSA needs at least two elements")
        if min(self.element_spacing_m, self.feed_length_m) <= 0:
            raise ConfigurationError("FSA geometry lengths must be positive")
        if self.eps_eff < 1.0:
            raise ConfigurationError("eps_eff must be >= 1")
        if self.space_harmonic < 1:
            raise ConfigurationError("space harmonic must be a positive integer")
        if self.element_taper not in ("uniform", "cosine"):
            raise ConfigurationError(
                f"element_taper must be 'uniform' or 'cosine', got {self.element_taper!r}"
            )

    def element_weights(self) -> "np.ndarray":
        """Amplitude weight of each element: feed-loss decay times the
        optional raised-cosine taper."""
        n = np.arange(self.n_elements)
        weights = np.exp(-self.feed_loss_np_per_m * n * self.feed_length_m)
        if self.element_taper == "cosine":
            weights = weights * (
                0.54 - 0.46 * np.cos(2.0 * np.pi * (n + 0.5) / self.n_elements)
            )
        return weights

    @classmethod
    def from_scan(
        cls,
        freq_start_hz: float = BAND_START_HZ,
        freq_stop_hz: float = BAND_STOP_HZ,
        angle_start_deg: float = -30.0,
        angle_stop_deg: float = 30.0,
        n_elements: int = 24,
        eps_eff: float = 6.25,
        space_harmonic: int = 3,
        peak_gain_dbi: float = FSA_PEAK_GAIN_DBI,
        feed_loss_np_per_m: float = 1.5,
        element_taper: str = "cosine",
    ) -> "FsaDesign":
        """Solve element spacing and feed length so the beam scans from
        ``angle_start_deg`` at ``freq_start_hz`` to ``angle_stop_deg`` at
        ``freq_stop_hz``.

        From sin θ(f) = A − B/f with A = ℓ√ε/d and B = m·c/d, two
        (frequency, angle) pairs determine A and B, hence d and ℓ.
        """
        if freq_stop_hz <= freq_start_hz:
            raise ConfigurationError("freq_stop must exceed freq_start")
        if angle_stop_deg <= angle_start_deg:
            raise ConfigurationError("angle_stop must exceed angle_start")
        s1 = math.sin(math.radians(angle_start_deg))
        s2 = math.sin(math.radians(angle_stop_deg))
        b = (s2 - s1) / (1.0 / freq_start_hz - 1.0 / freq_stop_hz)
        a = s1 + b / freq_start_hz
        spacing = space_harmonic * SPEED_OF_LIGHT / b
        feed_length = a * spacing / math.sqrt(eps_eff)
        if spacing <= 0 or feed_length <= 0:
            raise ConfigurationError(
                "requested scan has no physical series-fed solution "
                f"(d={spacing}, l={feed_length})"
            )
        return cls(
            n_elements=n_elements,
            element_spacing_m=spacing,
            feed_length_m=feed_length,
            eps_eff=eps_eff,
            space_harmonic=space_harmonic,
            peak_gain_dbi=peak_gain_dbi,
            feed_loss_np_per_m=feed_loss_np_per_m,
            element_taper=element_taper,
        )

    # --- dispersion --------------------------------------------------------

    @property
    def dispersion_intercept(self) -> float:
        """A = ℓ√ε_eff / d in sin θ(f) = A − B/f."""
        return self.feed_length_m * math.sqrt(self.eps_eff) / self.element_spacing_m

    @property
    def dispersion_slope_hz(self) -> float:
        """B = m·c/d [Hz] in sin θ(f) = A − B/f."""
        return self.space_harmonic * SPEED_OF_LIGHT / self.element_spacing_m

    def sin_beam_angle(self, frequency_hz):
        """sin of the port-A beam angle at ``frequency_hz`` (may exceed
        |1| outside the scannable band — callers must check)."""
        f = np.asarray(frequency_hz, dtype=float)
        return self.dispersion_intercept - self.dispersion_slope_hz / f

    def scan_band_hz(self) -> tuple[float, float]:
        """The frequency interval over which the beam is visible
        (|sin θ| <= 1)."""
        a, b = self.dispersion_intercept, self.dispersion_slope_hz
        f_low = b / (a + 1.0)
        f_high = b / (a - 1.0) if a > 1.0 else math.inf
        return (f_low, f_high)

    def aperture_m(self) -> float:
        """Physical aperture length [m]."""
        return self.n_elements * self.element_spacing_m


class FsaPort:
    """Which end of the FSA the signal enters/exits."""

    A = "A"
    B = "B"


class FrequencyScanningAntenna:
    """One port of an FSA: dispersion plus the full gain pattern.

    Port A is fed from the "left" end; port B from the mirrored end, which
    reverses the progressive phase and therefore mirrors the beam:
    θ_B(f) = −θ_A(f) (paper Fig. 3).
    """

    def __init__(self, design: FsaDesign | None = None, port: str = FsaPort.A) -> None:
        if port not in (FsaPort.A, FsaPort.B):
            raise ConfigurationError(f"unknown FSA port {port!r}")
        self.design = design or FsaDesign()
        self.port = port
        self._mirror = -1.0 if port == FsaPort.B else 1.0

    # --- dispersion --------------------------------------------------------

    def beam_angle_deg(self, frequency_hz):
        """Beam direction [deg] at ``frequency_hz``.

        Raises ConfigurationError when the frequency falls outside the
        scannable (visible-space) band.
        """
        sin_theta = self._mirror * self.design.sin_beam_angle(frequency_hz)
        if np.any(np.abs(sin_theta) > 1.0):
            raise ConfigurationError(
                "frequency outside the FSA's visible scan band "
                f"{tuple(round(f/1e9, 2) for f in self.design.scan_band_hz())} GHz"
            )
        return np.degrees(np.arcsin(sin_theta))

    def alignment_frequency_hz(self, angle_deg):
        """The frequency whose beam points at ``angle_deg`` (inverse of
        :meth:`beam_angle_deg`)."""
        sin_theta = self._mirror * np.sin(np.radians(np.asarray(angle_deg, dtype=float)))
        denom = self.design.dispersion_intercept - sin_theta
        if np.any(denom <= 0):
            raise ConfigurationError("angle not reachable by this FSA design")
        return self.design.dispersion_slope_hz / denom

    def scan_rate_deg_per_hz(self, frequency_hz: float) -> float:
        """d(beam angle)/d(frequency) at ``frequency_hz`` [deg/Hz]."""
        sin_theta = self._mirror * float(self.design.sin_beam_angle(frequency_hz))
        cos_theta = math.sqrt(max(1.0 - sin_theta * sin_theta, 1e-12))
        dsin_df = self._mirror * self.design.dispersion_slope_hz / frequency_hz**2
        return math.degrees(dsin_df / cos_theta)

    # --- pattern -----------------------------------------------------------

    def gain_dbi(self, angle_deg, frequency_hz):
        """Power gain [dBi] toward ``angle_deg`` at ``frequency_hz``.

        Element factor (cos θ patch-like roll-off) × array factor with the
        feed-loss amplitude taper, normalized so the beam peak sits at
        ``design.peak_gain_dbi``.
        """
        angle = np.asarray(angle_deg, dtype=float)
        freq = np.asarray(frequency_hz, dtype=float)
        angle_b, freq_b = np.broadcast_arrays(angle, freq)
        k = 2.0 * np.pi * freq_b / SPEED_OF_LIGHT
        d_m = self.design.element_spacing_m
        # Progressive feed phase, wrapped into the m-th space harmonic.
        psi = k * d_m * self.design.sin_beam_angle(freq_b)
        # Phase seen by element n in direction θ (port B mirrors the
        # geometry, equivalent to evaluating port A at −θ).
        theta_rad = np.radians(self._mirror * angle_b)
        phase_per_element = k * d_m * np.sin(theta_rad) - psi
        taper = self.design.element_weights()
        # Sum over elements: result shape = broadcast shape.
        n = np.arange(self.design.n_elements)
        phases = np.multiply.outer(phase_per_element, n)
        af = np.abs(np.tensordot(np.exp(1j * phases), taper, axes=([phases.ndim - 1], [0])))
        af_norm = af / taper.sum()
        element_factor = np.maximum(np.cos(np.radians(angle_b)), 1e-3)
        gain_linear = (
            10.0 ** (self.design.peak_gain_dbi / 10.0) * af_norm**2 * element_factor
        )
        gain_db = 10.0 * np.log10(np.maximum(gain_linear, 1e-12))
        return gain_db if gain_db.ndim else float(gain_db)

    def beamwidth_deg(self, frequency_hz: float) -> float:
        """-3 dB beamwidth at ``frequency_hz``, found numerically."""
        center = float(self.beam_angle_deg(frequency_hz))
        angles = center + np.linspace(-30.0, 30.0, 2401)
        gains = self.gain_dbi(angles, frequency_hz)
        peak = gains.max()
        above = angles[gains >= peak - 3.0]
        return float(above.max() - above.min())
