"""Van Atta retroreflector array — the baseline tags' antenna (paper §4).

A Van Atta array pairs antennas through equal-length traces so any
incident wavefront is re-radiated back toward its arrival direction. It
needs no power and no steering, but it has **no signal port**: you cannot
tap the received signal for a local receiver, which is exactly why the
paper rejects it for downlink-capable nodes. We implement it for the
mmTag/Millimetro baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError

__all__ = ["VanAttaArray"]


@dataclass(frozen=True)
class VanAttaArray:
    """Behavioural Van Atta retroreflector.

    Attributes:
        n_elements: number of antenna elements (pairs count as two).
        element_spacing_m: inter-element spacing.
        element_gain_dbi: per-element gain.
        trace_loss_db: total loss in the interconnecting traces.
        field_of_view_deg: incidence range over which retro-reflection
            holds (falls off outside as the element pattern dies).
    """

    n_elements: int = 16
    element_spacing_m: float = 5.35e-3  # λ/2 at 28 GHz
    element_gain_dbi: float = 5.0
    trace_loss_db: float = 2.0
    field_of_view_deg: float = 90.0

    def __post_init__(self) -> None:
        if self.n_elements < 2 or self.n_elements % 2:
            raise ConfigurationError("Van Atta needs an even element count >= 2")
        if self.element_spacing_m <= 0:
            raise ConfigurationError("element spacing must be positive")

    def retro_gain_dbi(self, incidence_deg, frequency_hz):
        """Round-trip (monostatic) gain_db of the retro-reflected beam.

        Retro-direction combining is coherent across all N elements, so
        the two-way gain_db is 2·(G_elem + 10 log10 N) − trace loss, rolled
        off by the element pattern at wide incidence. This is the quantity
        that enters the backscatter link budget *once* (it already counts
        both receive and re-transmit apertures).
        """
        angle = np.asarray(incidence_deg, dtype=float)
        array_gain_db = self.element_gain_dbi + 10.0 * math.log10(self.n_elements)
        # cos^2 element roll-off per pass, two passes.
        cos_term = np.maximum(np.cos(np.radians(angle)), 1e-3)
        rolloff_db = -20.0 * np.log10(cos_term)
        gain_db = 2.0 * array_gain_db - self.trace_loss_db - 2.0 * rolloff_db
        outside = np.abs(angle) > self.field_of_view_deg / 2.0
        gain_db = np.where(outside, -30.0, gain_db)
        return gain_db if gain_db.ndim else float(gain_db)

    def aperture_m(self) -> float:
        """Physical aperture length [m]."""
        return self.n_elements * self.element_spacing_m

    def beamwidth_deg(self, frequency_hz: float) -> float:
        """Width of the retro-reflected beam (diffraction limit)."""
        lam = SPEED_OF_LIGHT / frequency_hz
        return math.degrees(0.886 * lam / self.aperture_m())
