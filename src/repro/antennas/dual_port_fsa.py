"""Dual-port FSA: MilBack's key passive structure (paper §4, Fig. 3).

Adding a second feed port at the mirrored end of the (symmetric) FSA
creates a second set of beams whose frequency→angle map is the mirror of
the first. For any direction θ there is then a *pair* of frequencies
(f_A, f_B) — one per port — whose beams both point at θ. That pair is
what OAQFM modulates, and its asymmetry is what encodes orientation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.antennas.fsa import FrequencyScanningAntenna, FsaDesign, FsaPort
from repro.constants import BAND_START_HZ, BAND_STOP_HZ
from repro.errors import ConfigurationError

__all__ = ["DualPortFsa", "TonePair"]


@dataclass(frozen=True)
class TonePair:
    """The OAQFM carrier pair for one node orientation."""

    freq_a_hz: float
    freq_b_hz: float

    @property
    def degenerate(self) -> bool:
        """True at (near-)normal incidence where f_A == f_B and the system
        must fall back to single-tone OOK (paper §6.2)."""
        return abs(self.freq_a_hz - self.freq_b_hz) < 1e6

    @property
    def separation_hz(self) -> float:
        """|f_A − f_B|."""
        return abs(self.freq_a_hz - self.freq_b_hz)


class DualPortFsa:
    """Two :class:`FrequencyScanningAntenna` ports sharing one aperture."""

    def __init__(
        self,
        design: FsaDesign | None = None,
        band_hz: tuple[float, float] = (BAND_START_HZ, BAND_STOP_HZ),
    ) -> None:
        self.design = design or FsaDesign()
        self.band_hz = band_hz
        if band_hz[0] >= band_hz[1]:
            raise ConfigurationError("band must be (low, high)")
        self.port_a = FrequencyScanningAntenna(self.design, FsaPort.A)
        self.port_b = FrequencyScanningAntenna(self.design, FsaPort.B)

    def ports(self) -> tuple[FrequencyScanningAntenna, FrequencyScanningAntenna]:
        """(port A, port B)."""
        return (self.port_a, self.port_b)

    def alignment_pair(self, orientation_deg: float) -> TonePair:
        """The (f_A, f_B) pair whose beams both face an AP located at
        ``orientation_deg`` off the node's broadside.

        By mirror symmetry f_B(θ) = f_A(−θ); at θ = 0 the pair is
        degenerate.
        """
        fa = float(self.port_a.alignment_frequency_hz(orientation_deg))
        fb = float(self.port_b.alignment_frequency_hz(orientation_deg))
        lo, hi = self.band_hz
        if not (lo <= fa <= hi and lo <= fb <= hi):
            raise ConfigurationError(
                f"orientation {orientation_deg:.1f} deg needs tones "
                f"({fa/1e9:.2f}, {fb/1e9:.2f}) GHz outside the band "
                f"[{lo/1e9:.2f}, {hi/1e9:.2f}] GHz"
            )
        return TonePair(fa, fb)

    def orientation_from_alignment(self, frequency_hz: float, port: str = FsaPort.A) -> float:
        """Invert :meth:`alignment_pair` for one port: the orientation at
        which ``frequency_hz`` is that port's aligned tone."""
        antenna = self.port_a if port == FsaPort.A else self.port_b
        return float(antenna.beam_angle_deg(frequency_hz))

    def scan_coverage_deg(self) -> float:
        """Total azimuth each port covers across the configured band."""
        lo = float(self.port_a.beam_angle_deg(self.band_hz[0]))
        hi = float(self.port_a.beam_angle_deg(self.band_hz[1]))
        return abs(hi - lo)

    def gain_dbi(self, port: str, angle_deg, frequency_hz):
        """Gain of the selected port (convenience dispatch)."""
        if port == FsaPort.A:
            return self.port_a.gain_dbi(angle_deg, frequency_hz)
        if port == FsaPort.B:
            return self.port_b.gain_dbi(angle_deg, frequency_hz)
        raise ConfigurationError(f"unknown FSA port {port!r}")

    def port_isolation_db(self, orientation_deg: float) -> float:
        """How much weaker the *other* port's tone is at each port, for a
        node at ``orientation_deg`` (drives the downlink SINR, §9.4).

        Port A receives its aligned tone f_A at full beam gain; tone f_B
        arrives through port A's pattern sidelobes at angle θ. The ratio
        is the inter-tone interference suppression.
        """
        pair = self.alignment_pair(orientation_deg)
        wanted = float(self.port_a.gain_dbi(orientation_deg, pair.freq_a_hz))
        leaked = float(self.port_a.gain_dbi(orientation_deg, pair.freq_b_hz))
        return wanted - leaked
