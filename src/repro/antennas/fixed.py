"""Fixed-beam antennas: isotropic reference and the AP's horns.

The AP uses Mi-Wave 261(34)-20/595 horns with 20 dB gain (paper §8),
mechanically steered. A Gaussian main-lobe model with a constant sidelobe
floor is the standard behavioural stand-in for a horn pattern.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["IsotropicAntenna", "HornAntenna"]


@dataclass(frozen=True)
class IsotropicAntenna:
    """0 dBi in every direction; the unit-gain reference."""

    gain_dbi_value: float = 0.0

    def gain_dbi(self, angle_deg, frequency_hz):
        """Constant gain regardless of direction and frequency."""
        angle = np.asarray(angle_deg, dtype=float)
        return np.broadcast_to(np.float64(self.gain_dbi_value), angle.shape).copy() \
            if angle.ndim else float(self.gain_dbi_value)


@dataclass(frozen=True)
class HornAntenna:
    """Gaussian-beam horn with peak gain and -3 dB beamwidth.

    The default beamwidth follows the usual gain-beamwidth product for a
    pyramidal horn: BW ≈ sqrt(41000 / G_linear) degrees for a symmetric
    beam, ≈ 18° at 20 dBi.
    """

    peak_gain_dbi: float = 20.0
    beamwidth_deg: float | None = None
    sidelobe_floor_dbi: float = -10.0

    def __post_init__(self) -> None:
        if self.beamwidth_deg is not None and self.beamwidth_deg <= 0:
            raise ConfigurationError("beamwidth must be positive")

    @property
    def effective_beamwidth_deg(self) -> float:
        """-3 dB full beamwidth [deg], derived from gain when not given."""
        if self.beamwidth_deg is not None:
            return self.beamwidth_deg
        g_linear = 10.0 ** (self.peak_gain_dbi / 10.0)
        return math.sqrt(41_000.0 / g_linear)

    def gain_dbi(self, angle_deg, frequency_hz):
        """Gaussian roll-off from the peak, floored at the sidelobe level."""
        angle = np.asarray(angle_deg, dtype=float)
        bw_deg = self.effective_beamwidth_deg
        # Gaussian with -3 dB at angle = bw_deg/2: G(θ) = Gp - 12 (θ/bw_deg)^2 dB.
        rolloff_db = 12.0 * (angle / bw_deg) ** 2
        gain = self.peak_gain_dbi - rolloff_db
        result = np.maximum(gain, self.sidelobe_floor_dbi)
        return result if result.ndim else float(result)
