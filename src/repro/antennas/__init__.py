"""Antenna models: horns, phased arrays, Van Atta, and the dual-port FSA."""

from repro.antennas.base import Antenna, gain_amplitude
from repro.antennas.fixed import IsotropicAntenna, HornAntenna
from repro.antennas.fsa import FsaDesign, FsaPort, FrequencyScanningAntenna
from repro.antennas.dual_port_fsa import DualPortFsa, TonePair
from repro.antennas.van_atta import VanAttaArray
from repro.antennas.array import UniformLinearArray, aoa_phase_rad, aoa_from_phase_deg

__all__ = [
    "Antenna",  # milback: disable=ML014 — public antenna protocol class
    "gain_amplitude",
    "IsotropicAntenna",
    "HornAntenna",
    "FsaDesign",
    "FsaPort",
    "FrequencyScanningAntenna",
    "DualPortFsa",
    "TonePair",
    "VanAttaArray",
    "UniformLinearArray",
    "aoa_phase_rad",
    "aoa_from_phase_deg",
]
