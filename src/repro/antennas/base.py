"""Antenna abstractions.

All antenna models expose power gain as a function of the angle off
boresight and the signal frequency. Angles are in degrees, gains in dBi.
Frequency dependence matters only for the FSA; fixed-beam antennas ignore
it but accept it so every model is interchangeable.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["Antenna", "gain_amplitude"]


@runtime_checkable
class Antenna(Protocol):
    """Minimal interface every antenna model implements."""

    def gain_dbi(self, angle_deg, frequency_hz):
        """Power gain [dBi] toward ``angle_deg`` off boresight at
        ``frequency_hz``. Accepts scalars or numpy arrays in either
        argument (broadcast together)."""
        ...


def gain_amplitude(antenna: Antenna, angle_deg, frequency_hz) -> np.ndarray:
    """Field (amplitude) gain: sqrt of the linear power gain."""
    g_db = np.asarray(antenna.gain_dbi(angle_deg, frequency_hz), dtype=float)
    return np.power(10.0, g_db / 20.0)
