"""Uniform linear phased array — the AP-side electronic-steering option.

The paper's prototype steers the AP horns mechanically but notes a phased
array is the practical deployment (§8). The AP also uses *two* receive
antennas for AoA; this model provides both the steerable pattern and the
inter-element phase that the AoA estimator consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError

__all__ = ["UniformLinearArray", "aoa_phase_rad", "aoa_from_phase_deg"]


@dataclass
class UniformLinearArray:
    """N-element uniform linear array with phase-shifter steering."""

    n_elements: int = 8
    element_spacing_m: float = 5.35e-3  # λ/2 at 28 GHz
    element_gain_dbi: float = 5.0
    steer_angle_deg: float = 0.0

    def __post_init__(self) -> None:
        if self.n_elements < 1:
            raise ConfigurationError("array needs at least one element")
        if self.element_spacing_m <= 0:
            raise ConfigurationError("element spacing must be positive")

    def steered_to(self, angle_deg: float) -> "UniformLinearArray":
        """A copy steered to ``angle_deg``."""
        return UniformLinearArray(
            self.n_elements,
            self.element_spacing_m,
            self.element_gain_dbi,
            angle_deg,
        )

    def peak_gain_dbi(self) -> float:
        """Broadside peak gain: element gain + 10 log10 N."""
        return self.element_gain_dbi + 10.0 * math.log10(self.n_elements)

    def gain_dbi(self, angle_deg, frequency_hz):
        """Steered array-factor gain toward ``angle_deg``."""
        angle = np.asarray(angle_deg, dtype=float)
        freq = np.asarray(frequency_hz, dtype=float)
        angle_b, freq_b = np.broadcast_arrays(angle, freq)
        k = 2.0 * np.pi * freq_b / SPEED_OF_LIGHT
        d_m = self.element_spacing_m
        phase = k * d_m * (
            np.sin(np.radians(angle_b)) - math.sin(math.radians(self.steer_angle_deg))
        )
        n = np.arange(self.n_elements)
        af = np.abs(np.exp(1j * np.multiply.outer(phase, n)).sum(axis=-1)) / self.n_elements
        element_factor = np.maximum(np.cos(np.radians(angle_b)), 1e-3)
        gain_linear = 10.0 ** (self.peak_gain_dbi() / 10.0) * af**2 * element_factor
        gain_db = 10.0 * np.log10(np.maximum(gain_linear, 1e-12))
        return gain_db if gain_db.ndim else float(gain_db)


def aoa_phase_rad(angle_deg: float, baseline_m: float, frequency_hz: float) -> float:
    """Phase difference between two antennas separated by ``baseline_m``
    for a plane wave from ``angle_deg``: Δφ = 2π d sin θ / λ."""
    lam = SPEED_OF_LIGHT / frequency_hz
    return 2.0 * math.pi * baseline_m * math.sin(math.radians(angle_deg)) / lam


def aoa_from_phase_deg(phase_rad: float, baseline_m: float, frequency_hz: float) -> float:
    """Invert :func:`aoa_phase_rad`; the phase is wrapped to (−π, π] first.

    Unambiguous for baselines up to λ/2.
    """
    lam = SPEED_OF_LIGHT / frequency_hz
    wrapped = math.remainder(phase_rad, 2.0 * math.pi)
    sin_theta = wrapped * lam / (2.0 * math.pi * baseline_m)
    if abs(sin_theta) > 1.0:
        raise ConfigurationError(
            f"phase {phase_rad:.3f} rad implies |sin| = {abs(sin_theta):.3f} > 1 "
            f"for baseline {baseline_m*1e3:.2f} mm"
        )
    return math.degrees(math.asin(sin_theta))
