"""Named, versioned fleet scenarios.

A scenario is a frozen spec in a registry, looked up by name; bumping a
spec's ``version`` signals that its tables are expected to change. All
geometry and traffic derive from per-entity RNG streams
(:func:`repro.utils.rng.indexed_rngs`) under a seed folded with the
scenario name, so a scenario run is a pure function of ``(name, seed)``
— the matrix runner can fan scenarios across workers in any order and
the tables come back byte-identical.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from repro.channel.mobility import Waypoint, WaypointTrajectory
from repro.errors import NetworkSimError
from repro.utils.geometry import Pose2D
from repro.utils.rng import indexed_rngs

from repro.netsim.fleet import FleetAp, FleetNode

__all__ = [
    "ScenarioSpec",
    "SCENARIOS",
    "get_scenario",
    "scenario_seed",
    "build_fleet",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One named fleet configuration.

    ``version`` is part of the scenario's published identity: any change
    that alters the spec's tables must bump it, so downstream
    comparisons (CI diffs, regression baselines) never silently compare
    across semantics.
    """

    name: str
    version: int
    description: str
    n_nodes: int
    n_aps: int = 1
    ap_spacing_m: float = 24.0
    min_radius_m: float = 1.5
    max_radius_m: float = 16.0
    heading_jitter_deg: float = 30.0
    mobile_fraction: float = 0.0
    speed_mps: float = 1.4
    horizon_s: float | None = None
    frame_cap: int = 64
    max_rounds: int = 32
    slot_s: float = 25e-6
    payload_bytes: int = 32
    max_attempts: int = 4
    transfers: bool = True
    roam_interval_s: float = 0.05
    hysteresis_db: float = 3.0
    trace_capacity: int | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise NetworkSimError("scenario needs at least one node")
        if self.n_aps < 1:
            raise NetworkSimError("scenario needs at least one AP")
        if not 0.0 < self.min_radius_m < self.max_radius_m:
            raise NetworkSimError("need 0 < min radius < max radius")
        if not 0.0 <= self.mobile_fraction <= 1.0:
            raise NetworkSimError("mobile fraction must be within [0, 1]")
        if self.n_aps > 1 and self.horizon_s is None:
            raise NetworkSimError("multi-AP scenarios need a horizon")

    @property
    def streams_per_node(self) -> int:
        """RNG streams each node entity consumes (geometry, link)."""
        return 2


#: The published scenario registry. Keep descriptions to one line; the
#: CLI lists them verbatim.
SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            name="five-node-crosscheck",
            version=1,
            description="5 static tags, 1 AP — pins netsim to SlottedInventory",
            n_nodes=5,
            max_radius_m=8.0,
        ),
        ScenarioSpec(
            name="single-ap-100",
            version=1,
            description="100 static tags around one AP, inventory + ARQ uplinks",
            n_nodes=100,
            frame_cap=256,
        ),
        ScenarioSpec(
            name="single-ap-500",
            version=1,
            description="500 static tags around one AP, inventory + ARQ uplinks",
            n_nodes=500,
            max_radius_m=17.0,
            frame_cap=1024,
        ),
        ScenarioSpec(
            name="single-ap-1000",
            version=1,
            description="1000 static tags around one AP, inventory + ARQ uplinks",
            n_nodes=1000,
            max_radius_m=17.0,
            frame_cap=2048,
            trace_capacity=4096,
        ),
        ScenarioSpec(
            name="three-ap-roaming",
            version=1,
            description="3 APs on a 24 m corridor, mobile tags roam on RSS",
            n_nodes=120,
            n_aps=3,
            max_radius_m=14.0,
            mobile_fraction=0.3,
            horizon_s=30.0,
            frame_cap=256,
            trace_capacity=8192,
        ),
    )
}


def get_scenario(name: str) -> ScenarioSpec:
    """Look a scenario up by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise NetworkSimError(f"unknown scenario {name!r} (known: {known})") from None


def scenario_seed(seed: int, name: str) -> int:
    """A stable per-scenario seed folded from the run seed and the name.

    Hash-derived (not ``seed + index``) so adding or reordering registry
    entries never shifts another scenario's streams.
    """
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _ap_poses(spec: ScenarioSpec) -> list[Pose2D]:
    """APs on a line along +x, each facing +y into the served area."""
    return [
        Pose2D.at(i * spec.ap_spacing_m, 0.0, 90.0) for i in range(spec.n_aps)
    ]


def build_fleet(
    spec: ScenarioSpec, run_seed: int
) -> tuple[list[FleetAp], dict[str, FleetNode]]:
    """Materialize a scenario's APs and nodes.

    Node ``i`` consumes exactly ``spec.streams_per_node`` streams at
    entity index ``i``: one for geometry (placement, mobility), one for
    the link layer (packet-success draws during ARQ). Identical at any
    worker count by the :func:`indexed_rngs` contract.
    """
    derived = scenario_seed(run_seed, spec.name)
    ap_poses = _ap_poses(spec)
    aps = [FleetAp(f"ap-{i}", pose) for i, pose in enumerate(ap_poses)]
    nodes: dict[str, FleetNode] = {}
    for i in range(spec.n_nodes):
        geom_rng, link_rng = indexed_rngs(derived, i, spec.streams_per_node)
        anchor = ap_poses[i % spec.n_aps]
        angle_deg = float(geom_rng.uniform(0.0, 180.0))
        radius_m = float(geom_rng.uniform(spec.min_radius_m, spec.max_radius_m))
        x = anchor.position.x + radius_m * math.cos(math.radians(angle_deg))
        y = anchor.position.y + radius_m * math.sin(math.radians(angle_deg))
        # Face roughly back at the anchor AP, with bounded jitter.
        jitter = float(
            geom_rng.uniform(-spec.heading_jitter_deg, spec.heading_jitter_deg)
        )
        heading = Pose2D.at(x, y).bearing_to(anchor) + jitter
        pose = Pose2D.at(x, y, heading)
        node_id = f"node-{i:04d}"
        trajectory = None
        if float(geom_rng.random()) < spec.mobile_fraction:
            trajectory = _corridor_walk(spec, geom_rng, pose, ap_poses)
        nodes[node_id] = FleetNode(
            node_id=node_id,
            index=i,
            pose=pose,
            rng=link_rng,
            trajectory=trajectory,
        )
    return aps, nodes


def _corridor_walk(
    spec: ScenarioSpec, geom_rng, start: Pose2D, ap_poses: list[Pose2D]
) -> WaypointTrajectory:
    """A walk from the node's pose toward a different AP's neighbourhood."""
    horizon_s = spec.horizon_s or 30.0
    target_ap = ap_poses[int(geom_rng.integers(0, len(ap_poses)))]
    offset_m = float(geom_rng.uniform(2.0, spec.max_radius_m / 2))
    side = 1.0 if geom_rng.random() < 0.5 else -1.0
    end_x = target_ap.position.x + side * offset_m
    end_y = target_ap.position.y + float(geom_rng.uniform(2.0, spec.max_radius_m / 2))
    distance_m = math.hypot(end_x - start.position.x, end_y - start.position.y)
    travel_s = max(distance_m / spec.speed_mps, 1e-3)
    end_heading = Pose2D.at(end_x, end_y).bearing_to(target_ap)
    waypoints = [
        Waypoint(0.0, start),
        Waypoint(travel_s, Pose2D.at(end_x, end_y, end_heading)),
    ]
    if travel_s < horizon_s:
        waypoints.append(
            Waypoint(horizon_s, Pose2D.at(end_x, end_y, end_heading))
        )
    return WaypointTrajectory(waypoints)
