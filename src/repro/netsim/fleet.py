"""Fleet actors: nodes, access points, and the processes between them.

The actors drive the *existing* protocol machinery over the event
kernel. :class:`InventoryProcess` runs the same framed slotted-ALOHA
algorithm as :class:`repro.protocol.inventory.SlottedInventory` — same
RNG draw order, same Q-adaptation, same SDM collision resolution via
:class:`repro.protocol.mac.SdmScheduler` — but frame by frame on the
simulated clock, with each tag's reply additionally gated by the link
budget (an out-of-range tag draws its slot and goes unheard). With all
tags in range and the default frame cap, its result is *equal* to
``SlottedInventory.run()`` on the same scene and seed; tests pin that.

:class:`FleetLink` duck-types the one-link interface
:class:`repro.protocol.arq.ReliableChannel` consumes, so the stock
stop-and-wait ARQ runs unmodified over fleet-scale link budgets: packet
success is a Bernoulli draw from the *node's own* RNG stream against
``(1 - BER)**bits``, with BER from the same OOK matched-filter bound
the physical layer uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro import obs
from repro.channel.mobility import WaypointTrajectory
from repro.channel.scene import NodePlacement, Scene2D
from repro.errors import NetworkSimError, ProtocolError
from repro.node.firmware import PayloadDirection
from repro.phy.ber import ook_matched_filter_ber
from repro.protocol.arq import ReliableChannel, RetryBackoff, TransferResult
from repro.protocol.inventory import InventoryResult, InventoryRound
from repro.protocol.mac import SdmScheduler
from repro.utils.geometry import Pose2D

from repro.netsim.core import NetworkSimulation
from repro.netsim.linkmodel import FleetLinkModel, LinkObservation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.netsim.roaming import RoamingController

__all__ = [
    "FleetNode",
    "FleetAp",
    "FleetLink",
    "InventoryProcess",
    "TransferProcess",
]

#: Preamble + header + CRC overhead added to every frame on the air.
FRAME_OVERHEAD_BITS = 64

#: Minimum node-side SNR for the downlink preamble to be detectable.
MIN_DOWNLINK_SNR_DB = 6.0

#: Minimum AP-side SINR for a backscatter reply to be detectable.
MIN_UPLINK_SINR_DB = 0.0


@dataclass
class FleetNode:
    """One backscatter tag in the fleet.

    ``rng`` is the node's private stream (derived per entity index via
    :func:`repro.utils.rng.indexed_rngs`), so its draws are independent
    of every other node and of scheduling order.
    """

    node_id: str
    index: int
    pose: Pose2D
    rng: np.random.Generator
    trajectory: WaypointTrajectory | None = None
    serving_ap: str | None = None

    def pose_at(self, time_s: float) -> Pose2D:
        """The node's pose at simulated time ``time_s``."""
        if self.trajectory is not None:
            return self.trajectory.pose_at(time_s)
        return self.pose


@dataclass
class FleetAp:
    """One access point: a pose plus the nodes it currently serves."""

    ap_id: str
    pose: Pose2D
    members: list[str] = field(default_factory=list)


class FleetLink:
    """One (AP, node) link at budget fidelity, duck-typing ``MilBackLink``.

    :class:`repro.protocol.arq.ReliableChannel` only needs
    ``send_to_node`` / ``receive_from_node`` returning reports with
    ``air_time_s`` and ``delivered``, raising :class:`ProtocolError`
    when the far side never responds. Both paths evaluate the live
    link budget at the simulation's current clock, so a node that moved
    out of the beam mid-transfer fails exactly like the protocol layer's
    out-of-range sessions do.
    """

    def __init__(
        self,
        sim: NetworkSimulation,
        model: FleetLinkModel,
        ap: FleetAp,
        node: FleetNode,
        interference_dbm: Callable[[float, Pose2D], tuple[float, ...]] | None = None,
        min_downlink_snr_db: float = MIN_DOWNLINK_SNR_DB,
        min_uplink_sinr_db: float = MIN_UPLINK_SINR_DB,
    ) -> None:
        self.sim = sim
        self.model = model
        self.ap = ap
        self.node = node
        self._interference_dbm = interference_dbm
        self.min_downlink_snr_db = min_downlink_snr_db
        self.min_uplink_sinr_db = min_uplink_sinr_db

    def _observe(self) -> LinkObservation:
        return self.model.observe(
            self.ap.pose, self.node.pose_at(self.sim.now_s)
        )

    def _uplink_sinr_db(self, observation: LinkObservation) -> float:
        interference: tuple[float, ...] = ()
        if self._interference_dbm is not None:
            node_pose = self.node.pose_at(self.sim.now_s)
            interference = self._interference_dbm(self.sim.now_s, node_pose)
        return self.model.uplink_sinr_db(observation, interference)

    def _deliver(self, payload: bytes, bit_rate_bps: float, snr_db: float):
        bits = len(payload) * 8 + FRAME_OVERHEAD_BITS
        air_time_s = bits / bit_rate_bps
        ber = float(ook_matched_filter_ber(snr_db))
        success_probability = (1.0 - ber) ** bits
        delivered = bool(self.node.rng.random() < success_probability)
        return _DeliveryReport(air_time_s=air_time_s, delivered=delivered)

    def send_to_node(self, payload: bytes, bit_rate_bps: float = 10e6):
        """Downlink frame: AP illuminates, the node's detector decodes."""
        observation = self._observe()
        if observation.downlink_snr_db < self.min_downlink_snr_db:
            raise ProtocolError(
                f"node {self.node.node_id!r} cannot detect the downlink "
                f"({observation.downlink_snr_db:.1f} dB at "
                f"{observation.distance_m:.1f} m)"
            )
        return self._deliver(payload, bit_rate_bps, observation.downlink_snr_db)

    def receive_from_node(self, payload: bytes, bit_rate_bps: float = 10e6):
        """Uplink frame: the node backscatters, the AP decodes."""
        observation = self._observe()
        if observation.downlink_snr_db < self.min_downlink_snr_db:
            raise ProtocolError(
                f"node {self.node.node_id!r} never heard the query "
                f"({observation.downlink_snr_db:.1f} dB downlink)"
            )
        sinr_db = self._uplink_sinr_db(observation)
        if sinr_db < self.min_uplink_sinr_db:
            raise ProtocolError(
                f"backscatter from {self.node.node_id!r} below the AP's "
                f"detection floor ({sinr_db:.1f} dB SINR)"
            )
        return self._deliver(payload, bit_rate_bps, sinr_db)


@dataclass(frozen=True)
class _DeliveryReport:
    """Minimal delivery report matching what ``ReliableChannel`` reads."""

    air_time_s: float
    delivered: bool


class InventoryProcess:
    """Event-driven framed slotted-ALOHA inventory for one AP.

    Draw-for-draw compatible with ``SlottedInventory.run()``: per frame
    every pending tag draws ``rng.integers(0, frame_size)`` in pending
    order, then singles resolve, SDM-separable collisions resolve, and
    the next frame sizes to ``max(min(2 * collisions, frame_cap), 2)``.
    The fleet layer adds (a) simulated air time — each frame occupies
    ``frame_size * slot_s`` on the clock — and (b) link-budget gating:
    a tag whose downlink or uplink margin is below the detection floors
    still draws its slot but is never heard, so it can neither resolve
    nor collide. Gating is threshold-based (no RNG draws), preserving
    the draw sequence exactly.
    """

    def __init__(
        self,
        sim: NetworkSimulation,
        model: FleetLinkModel,
        ap: FleetAp,
        nodes: dict[str, FleetNode],
        rng: np.random.Generator,
        sdm_separation_deg: float = 18.0,
        max_rounds: int = 32,
        frame_cap: int = 64,
        slot_s: float = 25e-6,
        interference_dbm: Callable[[float, Pose2D], tuple[float, ...]] | None = None,
        on_complete: Callable[[InventoryResult], None] | None = None,
    ) -> None:
        if frame_cap < 2:
            raise NetworkSimError("frame cap must be at least 2")
        if max_rounds < 1:
            raise NetworkSimError("need at least one inventory round")
        if slot_s <= 0:
            raise NetworkSimError("slot duration must be positive")
        self.sim = sim
        self.model = model
        self.ap = ap
        self.nodes = nodes
        self.rng = rng
        self.sdm_separation_deg = sdm_separation_deg
        self.max_rounds = max_rounds
        self.frame_cap = frame_cap
        self.slot_s = slot_s
        self._interference_dbm = interference_dbm
        self._on_complete = on_complete
        self.pending: list[str] = list(ap.members)
        self.inventoried: list[str] = []
        self.rounds: list[InventoryRound] = []
        self.result: InventoryResult | None = None
        self._frame_size = max(len(self.pending), 2)

    def start(self) -> None:
        """Schedule the first frame at the current simulated time."""
        self.sim.log(
            "netsim.inventory.start",
            ap=self.ap.ap_id,
            tags=len(self.pending),
        )
        self.sim.schedule(0.0, self._run_frame)

    # --- internals -----------------------------------------------------------------

    def _reachable(self, node_id: str) -> bool:
        node = self.nodes[node_id]
        observation = self.model.observe(
            self.ap.pose, node.pose_at(self.sim.now_s)
        )
        if observation.downlink_snr_db < MIN_DOWNLINK_SNR_DB:
            return False
        interference: tuple[float, ...] = ()
        if self._interference_dbm is not None:
            interference = self._interference_dbm(
                self.sim.now_s, node.pose_at(self.sim.now_s)
            )
        return (
            self.model.uplink_sinr_db(observation, interference)
            >= MIN_UPLINK_SINR_DB
        )

    def _frame_scene(self) -> Scene2D:
        placements = tuple(
            NodePlacement(self.nodes[node_id].pose_at(self.sim.now_s), node_id)
            for node_id in self.pending
        )
        return Scene2D(self.ap.pose, placements, ())

    def _run_frame(self) -> None:
        if not self.pending or len(self.rounds) >= self.max_rounds:
            self._finish()
            return
        frame_size = self._frame_size
        # Every pending tag draws its slot — in pending order, exactly
        # as SlottedInventory does — whether or not the AP can hear it.
        slots: dict[int, list[str]] = {}
        heard = 0
        for tag in self.pending:
            slot = int(self.rng.integers(0, frame_size))
            if self._reachable(tag):
                slots.setdefault(slot, []).append(tag)
                heard += 1
        scheduler: SdmScheduler | None = None
        if any(len(occupants) > 1 for occupants in slots.values()):
            scheduler = SdmScheduler(self._frame_scene(), self.sdm_separation_deg)
        resolved: list[str] = []
        singles = collisions = sdm_saves = 0
        for occupants in slots.values():
            if len(occupants) == 1:
                singles += 1
                resolved.append(occupants[0])
                continue
            assert scheduler is not None
            separable = all(
                not scheduler.conflicts(a, b)
                for i, a in enumerate(occupants)
                for b in occupants[i + 1 :]
            )
            if separable:
                sdm_saves += 1
                resolved.extend(occupants)
            else:
                collisions += 1
        round_stats = InventoryRound(
            frame_size=frame_size,
            singles=singles,
            collisions=collisions,
            empties=frame_size - len(slots),
            resolved_by_sdm=sdm_saves,
        )
        self.rounds.append(round_stats)
        obs.counter("netsim.rounds").inc()
        for tag in resolved:
            self.pending.remove(tag)
            self.inventoried.append(tag)
        obs.counter("netsim.inventoried").inc(len(resolved))
        self.sim.log(
            "netsim.inventory.frame",
            ap=self.ap.ap_id,
            frame_size=frame_size,
            heard=heard,
            singles=singles,
            collisions=collisions,
            resolved_by_sdm=sdm_saves,
            remaining=len(self.pending),
        )
        backlog = max(2 * round_stats.collisions, 1)
        self._frame_size = max(min(backlog, self.frame_cap), 2)
        self.sim.schedule(frame_size * self.slot_s, self._run_frame)

    def _finish(self) -> None:
        self.result = InventoryResult(tuple(self.inventoried), tuple(self.rounds))
        self.sim.log(
            "netsim.inventory.done",
            ap=self.ap.ap_id,
            inventoried=len(self.inventoried),
            rounds=len(self.rounds),
            total_slots=self.result.total_slots,
        )
        if self._on_complete is not None:
            self._on_complete(self.result)


class TransferProcess:
    """Serial stop-and-wait ARQ transfers from inventoried tags to an AP.

    One :class:`ReliableChannel` per node over a :class:`FleetLink`;
    transfers are serialized on the AP's air interface, each scheduled
    after the previous transfer's air + backoff time has elapsed on the
    simulated clock.
    """

    def __init__(
        self,
        sim: NetworkSimulation,
        model: FleetLinkModel,
        ap: FleetAp,
        nodes: dict[str, FleetNode],
        node_ids: Sequence[str],
        payload_bytes: int = 32,
        bit_rate_bps: float = 10e6,
        max_attempts: int = 4,
        interference_dbm: Callable[[float, Pose2D], tuple[float, ...]] | None = None,
        on_complete: Callable[["TransferProcess"], None] | None = None,
    ) -> None:
        if payload_bytes < 1:
            raise NetworkSimError("payload must be at least one byte")
        self.sim = sim
        self.model = model
        self.ap = ap
        self.nodes = nodes
        self.queue: list[str] = list(node_ids)
        self.payload_bytes = payload_bytes
        self.bit_rate_bps = bit_rate_bps
        self.max_attempts = max_attempts
        self._interference_dbm = interference_dbm
        self._on_complete = on_complete
        self.results: dict[str, TransferResult] = {}
        self.delivered = 0
        self.air_time_s = 0.0

    def start(self) -> None:
        """Schedule the first queued transfer."""
        self.sim.schedule(0.0, self._run_next)

    def _run_next(self) -> None:
        if not self.queue:
            self.sim.log(
                "netsim.transfers.done",
                ap=self.ap.ap_id,
                delivered=self.delivered,
                total=len(self.results),
            )
            if self._on_complete is not None:
                self._on_complete(self)
            return
        node_id = self.queue.pop(0)
        node = self.nodes[node_id]
        link = FleetLink(
            self.sim,
            self.model,
            self.ap,
            node,
            interference_dbm=self._interference_dbm,
        )
        channel = ReliableChannel(
            link,
            max_attempts=self.max_attempts,
            backoff=RetryBackoff.fixed(100e-6),
        )
        payload = node_id.encode("ascii").ljust(self.payload_bytes, b"\x00")
        result = channel.send_reliable(
            payload, PayloadDirection.UPLINK, self.bit_rate_bps
        )
        self.results[node_id] = result
        self.air_time_s += result.air_time_s
        if result.delivered:
            self.delivered += 1
        obs.counter(
            "netsim.transfers", delivered=str(result.delivered).lower()
        ).inc()
        self.sim.log(
            "netsim.transfer",
            ap=self.ap.ap_id,
            node=node_id,
            delivered=result.delivered,
            attempts=result.attempts,
        )
        # The next transfer starts once this one's air + pacing time has
        # elapsed on the shared air interface.
        self.sim.schedule(
            result.air_time_s + result.wait_time_s + 10e-6, self._run_next
        )

    def delivery_ratio(self) -> float:
        """Delivered transfers over attempted transfers."""
        if not self.results:
            return 0.0
        return self.delivered / len(self.results)
