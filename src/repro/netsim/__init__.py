"""Fleet-scale discrete-event network simulation.

The figure-level simulator (:mod:`repro.sim`) synthesizes waveforms for
one link at a time; this package answers the *network* questions the
paper's §7 raises — how fast can one AP inventory a thousand tags, what
does SDM buy at fleet scale, how do mobile tags roam across APs — by
driving the existing protocol machinery (slotted inventory, SDM
scheduling, stop-and-wait ARQ) over a deterministic event kernel at
link-budget fidelity.

Entry points: :func:`repro.netsim.runner.run_scenario` for one named
scenario, :func:`repro.netsim.runner.run_matrix` for a comparison
matrix, and the ``repro netsim`` CLI for both. Every run is a pure
function of ``(scenario, seed)``; see ``docs/NETWORK.md``.
"""

from __future__ import annotations

from repro.netsim.core import EventQueue, NetworkSimulation
from repro.netsim.fleet import (
    FleetAp,
    FleetLink,
    FleetNode,
    InventoryProcess,
    TransferProcess,
)
from repro.netsim.linkmodel import FleetLinkModel, LinkObservation
from repro.netsim.roaming import RoamingController
from repro.netsim.runner import (
    ScenarioResult,
    dump_json,
    matrix_document,
    render_table,
    run_matrix,
    run_scenario,
)
from repro.netsim.scenarios import (
    SCENARIOS,
    ScenarioSpec,
    build_fleet,
    get_scenario,
    scenario_seed,
)

__all__ = [
    "EventQueue",
    "NetworkSimulation",
    "FleetAp",
    "FleetLink",
    "FleetNode",
    "InventoryProcess",
    "TransferProcess",
    "FleetLinkModel",
    "LinkObservation",
    "RoamingController",
    "ScenarioResult",  # milback: disable=ML014 — public result type
    "run_scenario",
    "run_matrix",
    "render_table",
    "matrix_document",
    "dump_json",
    "SCENARIOS",
    "ScenarioSpec",
    "build_fleet",
    "get_scenario",
    "scenario_seed",
]
