"""Deterministic discrete-event kernel for network-scale simulation.

The kernel is a binary heap of ``(time, sequence, action)`` entries and
a simulated clock. Two properties make every run replayable bit for
bit, at any worker count, under either kernel mode:

* **FIFO tie-breaking** — every scheduled event carries a monotone
  sequence number, so events that share a timestamp dispatch in the
  order they were scheduled. Heap order is therefore total and
  independent of Python's hash seed, the heap's internal layout, or
  anything else non-deterministic.
* **No wall-clock, no global RNG** — the kernel never reads real time
  or draws randomness. All stochastic behaviour lives in the actors,
  each of which owns a seeded per-entity stream from
  :func:`repro.utils.rng.indexed_rngs`.

Actors are plain objects that schedule callbacks; there is no thread or
generator machinery. A simulation's event trace is recorded into a
:class:`repro.protocol.events.EventLog` on the simulated clock (with an
optional bounded-ring capacity for very long runs), so traces diff
cleanly against protocol-layer sessions and across runs.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro import obs
from repro.errors import NetworkSimError
from repro.protocol.events import EventLog

__all__ = ["EventQueue", "NetworkSimulation"]


class EventQueue:
    """A time-ordered heap of scheduled actions with FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    def push(self, time_s: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at ``time_s``."""
        heapq.heappush(self._heap, (time_s, self._seq, action))
        self._seq += 1

    def pop(self) -> tuple[float, Callable[[], None]]:
        """Remove and return the earliest ``(time_s, action)`` entry."""
        if not self._heap:
            raise NetworkSimError("event queue is empty")
        time_s, _, action = heapq.heappop(self._heap)
        return time_s, action

    def peek_time_s(self) -> float:
        """Timestamp of the earliest pending event."""
        if not self._heap:
            raise NetworkSimError("event queue is empty")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class NetworkSimulation:
    """The shared clock + event queue every actor schedules against.

    One instance drives one scenario run: access points, fleet nodes,
    the roaming controller and transfer processes all schedule their
    callbacks here, and every noteworthy milestone is recorded into the
    simulated-time :attr:`trace`.
    """

    def __init__(self, trace_capacity: int | None = None) -> None:
        self._queue = EventQueue()
        self._now_s = 0.0
        self._events_processed = 0
        self.trace = EventLog(capacity=trace_capacity)

    @property
    def now_s(self) -> float:
        """Current simulated time."""
        return self._now_s

    @property
    def events_processed(self) -> int:
        """Events dispatched so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Events still queued."""
        return len(self._queue)

    def schedule(self, delay_s: float, action: Callable[[], None]) -> None:
        """Run ``action`` after ``delay_s`` of simulated time."""
        if delay_s < 0:
            raise NetworkSimError("cannot schedule into the past")
        self._queue.push(self._now_s + delay_s, action)

    def schedule_at(self, time_s: float, action: Callable[[], None]) -> None:
        """Run ``action`` at absolute simulated time ``time_s``."""
        if time_s < self._now_s:
            raise NetworkSimError("cannot schedule into the past")
        self._queue.push(time_s, action)

    def log(self, kind: str, **detail: Any) -> None:
        """Record a trace event at the current simulated time."""
        self.trace.record(kind, **detail)

    def run(
        self,
        until_s: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Dispatch events in timestamp order; returns how many ran.

        Stops when the queue drains, when the next event lies beyond
        ``until_s`` (the clock is then advanced to ``until_s``), or
        after ``max_events`` dispatches — whichever comes first.
        """
        dispatched = 0
        while self._queue:
            if max_events is not None and dispatched >= max_events:
                break
            next_s = self._queue.peek_time_s()
            if until_s is not None and next_s > until_s:
                break
            time_s, action = self._queue.pop()
            self._advance_clock(time_s)
            action()
            dispatched += 1
        if until_s is not None and until_s > self._now_s:
            self._advance_clock(until_s)
        self._events_processed += dispatched
        obs.counter("netsim.events.processed").inc(dispatched)
        return dispatched

    def _advance_clock(self, time_s: float) -> None:
        self._now_s = time_s
        # Keep the trace's simulated clock in lockstep so recorded
        # events carry the dispatch timestamp.
        delta_s = time_s - self.trace.now_s
        if delta_s > 0:
            self.trace.advance(delta_s)
