"""Scenario execution and the matrix runner.

``run_scenario`` wires one scenario's fleet onto a fresh event kernel,
runs it to completion, and reduces the run to a plain-data
:class:`ScenarioResult` (picklable, so results cross worker boundaries
cheaply). ``run_matrix`` fans a list of scenario names through
:func:`repro.parallel.parallel_map` — each scenario is a pure function
of ``(name, seed)``, so the matrix is byte-identical at any worker
count, and rides an installed :class:`repro.parallel.PersistentPool`
when one is active.

Outputs come in two shapes: a human-readable comparison table
(:func:`render_table`) and a canonical JSON document
(:func:`matrix_document` + :func:`dump_json`) containing only
simulated quantities — no wall-clock — so runs diff byte for byte.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import asdict, dataclass

from repro import obs
from repro.parallel import parallel_map, resolve_max_workers
from repro.protocol.inventory import InventoryResult

from repro.netsim.core import NetworkSimulation
from repro.netsim.fleet import FleetAp, InventoryProcess, TransferProcess
from repro.netsim.linkmodel import FleetLinkModel
from repro.netsim.roaming import RoamingController
from repro.netsim.scenarios import (
    ScenarioSpec,
    build_fleet,
    get_scenario,
    scenario_seed,
)
from repro.utils.rng import indexed_rngs

__all__ = [
    "ScenarioResult",
    "run_scenario",
    "run_matrix",
    "render_table",
    "matrix_document",
    "dump_json",
]


@dataclass(frozen=True)
class ScenarioResult:
    """Plain-data outcome of one scenario run."""

    name: str
    version: int
    seed: int
    n_nodes: int
    n_aps: int
    inventoried: int
    rounds: int
    total_slots: int
    slots_per_tag: float
    inventory_s: float
    tags_per_s: float
    transfers_total: int
    transfers_delivered: int
    delivery_ratio: float
    handoffs: int
    events_processed: int
    sim_time_s: float
    trace_events: int
    trace_dropped: int
    trace_digest: str


def run_scenario(name: str, seed: int = 0) -> ScenarioResult:
    """Run one named scenario to completion on a fresh kernel."""
    spec = get_scenario(name)
    with obs.span("netsim.scenario", scenario=name, seed=seed):
        result = _execute(spec, seed)
    obs.counter("netsim.scenarios.run").inc()
    return result


def _execute(spec: ScenarioSpec, seed: int) -> ScenarioResult:
    derived = scenario_seed(seed, spec.name)
    aps, nodes = build_fleet(spec, seed)
    model = FleetLinkModel()
    sim = NetworkSimulation(trace_capacity=spec.trace_capacity)

    controller: RoamingController | None = None
    interference_fields: dict[str, object] = {}
    if spec.n_aps > 1:
        controller = RoamingController(
            sim,
            model,
            aps,
            nodes,
            interval_s=spec.roam_interval_s,
            hysteresis_db=spec.hysteresis_db,
            horizon_s=spec.horizon_s,
        )
        controller.attach_all()
        controller.start()
        interference_fields = {
            ap.ap_id: controller.interference_for(ap.ap_id) for ap in aps
        }
    else:
        # Single AP serves the whole fleet, in entity-index order — the
        # same order SlottedInventory walks a scene's placements.
        aps[0].members = sorted(nodes)
        for node_id in aps[0].members:
            nodes[node_id].serving_ap = aps[0].ap_id

    inventories: dict[str, InventoryResult] = {}
    transfers: dict[str, TransferProcess] = {}
    inventory_done_s: dict[str, float] = {}

    def _start_ap(ap: FleetAp, ap_index: int) -> None:
        if not ap.members:
            return
        inventory_rng = indexed_rngs(derived, spec.n_nodes + ap_index, 1)[0]
        field = interference_fields.get(ap.ap_id)

        def _on_inventory_done(result: InventoryResult) -> None:
            inventories[ap.ap_id] = result
            inventory_done_s[ap.ap_id] = sim.now_s
            if spec.transfers and result.inventoried:
                process = TransferProcess(
                    sim,
                    model,
                    ap,
                    nodes,
                    result.inventoried,
                    payload_bytes=spec.payload_bytes,
                    max_attempts=spec.max_attempts,
                    interference_dbm=field,
                )
                transfers[ap.ap_id] = process
                process.start()

        InventoryProcess(
            sim,
            model,
            ap,
            nodes,
            inventory_rng,
            max_rounds=spec.max_rounds,
            frame_cap=spec.frame_cap,
            slot_s=spec.slot_s,
            interference_dbm=field,
            on_complete=_on_inventory_done,
        ).start()

    for ap_index, ap in enumerate(aps):
        _start_ap(ap, ap_index)
    sim.run(until_s=spec.horizon_s)

    inventoried = sum(len(r.inventoried) for r in inventories.values())
    rounds = sum(r.n_rounds for r in inventories.values())
    total_slots = sum(r.total_slots for r in inventories.values())
    inventory_s = max(inventory_done_s.values(), default=0.0)
    transfers_total = sum(len(p.results) for p in transfers.values())
    transfers_delivered = sum(p.delivered for p in transfers.values())
    digest = hashlib.sha256(sim.trace.render().encode()).hexdigest()
    return ScenarioResult(
        name=spec.name,
        version=spec.version,
        seed=seed,
        n_nodes=spec.n_nodes,
        n_aps=spec.n_aps,
        inventoried=inventoried,
        rounds=rounds,
        total_slots=total_slots,
        slots_per_tag=(total_slots / inventoried) if inventoried else 0.0,
        inventory_s=inventory_s,
        tags_per_s=(inventoried / inventory_s) if inventory_s > 0 else 0.0,
        transfers_total=transfers_total,
        transfers_delivered=transfers_delivered,
        delivery_ratio=(
            transfers_delivered / transfers_total if transfers_total else 0.0
        ),
        handoffs=controller.handoffs if controller is not None else 0,
        events_processed=sim.events_processed,
        sim_time_s=sim.now_s,
        trace_events=len(sim.trace),
        trace_dropped=sim.trace.dropped,
        trace_digest=digest,
    )


def _scenario_task(seed: int, name: str) -> ScenarioResult:
    """Module-level matrix task so fan-out stays picklable.

    ``functools.partial(_scenario_task, seed)`` crosses the pickle
    boundary, letting the matrix ride an installed
    :class:`~repro.parallel.PersistentPool` instead of forking cold.
    """
    return run_scenario(name, seed=seed)


def run_matrix(
    names: list[str] | tuple[str, ...],
    seed: int = 0,
    max_workers: int | None = None,
) -> list[ScenarioResult]:
    """Run several scenarios, fanned across workers.

    Each scenario is independent and seeded through
    :func:`~repro.netsim.scenarios.scenario_seed`, so the returned list
    (ordered as ``names``) and the merged obs counters are identical at
    any worker count.
    """
    for name in names:
        get_scenario(name)  # fail fast on typos, before forking
    workers = resolve_max_workers(max_workers)
    with obs.span("netsim.matrix", scenarios=len(names), seed=seed):
        result = parallel_map(
            functools.partial(_scenario_task, seed), list(names), max_workers=workers
        )
    return list(result.values)


def render_table(results: list[ScenarioResult]) -> str:
    """Human-readable comparison table across scenarios."""
    lines = [
        "scenario                 ver  nodes  aps  invent  rounds  "
        "slots/tag   tags/s  deliv  handoff    events",
    ]
    for r in results:
        lines.append(
            f"{r.name:<24} {r.version:3d}  {r.n_nodes:5d}  {r.n_aps:3d}  "
            f"{r.inventoried:6d}  {r.rounds:6d}  {r.slots_per_tag:9.2f}  "
            f"{r.tags_per_s:7.0f}  {r.delivery_ratio:5.0%}  "
            f"{r.handoffs:7d}  {r.events_processed:8d}"
        )
    return "\n".join(lines)


def matrix_document(results: list[ScenarioResult], seed: int) -> dict:
    """Canonical JSON-able document for a matrix run.

    Simulated quantities only — no wall-clock, no hostnames — so two
    runs of the same (names, seed) produce byte-identical dumps.
    """
    return {
        "netsim_matrix_version": 1,
        "seed": seed,
        "scenarios": [asdict(r) for r in results],
    }


def dump_json(document: dict) -> str:
    """Canonical byte-stable JSON encoding."""
    return json.dumps(document, sort_keys=True, indent=2) + "\n"
