"""Multi-AP coverage: RSS-hysteresis roaming and inter-AP interference.

A fleet larger than one room needs several APs, and a mobile node must
pick which one serves it. The controller re-evaluates every node's RSS
toward every AP on a fixed simulated-time cadence and hands the node
over only when another AP beats the serving one by a hysteresis margin
— the classic guard against ping-ponging on the cell edge.

Co-channel APs also interfere: an AP decoding a tag's backscatter hears
every other AP's carrier through both horns' off-axis patterns. The
controller exposes that as a per-AP interference field the link layer
folds into its SINR, so cell-edge tags degrade the way a real
deployment's would rather than enjoying single-AP physics.
"""

from __future__ import annotations

import math

from repro import obs
from repro.errors import NetworkSimError
from repro.utils.geometry import Pose2D

from repro.netsim.core import NetworkSimulation
from repro.netsim.fleet import FleetAp, FleetNode
from repro.netsim.linkmodel import FleetLinkModel

__all__ = ["RoamingController"]

#: How far along an AP's heading its boresight "target" sits when the
#: interference model needs a pointing direction for an idle beam [m].
BORESIGHT_RANGE_M = 10.0


def _boresight_target(pose: Pose2D) -> Pose2D:
    heading_rad = math.radians(pose.heading_deg)
    return Pose2D.at(
        pose.position.x + BORESIGHT_RANGE_M * math.cos(heading_rad),
        pose.position.y + BORESIGHT_RANGE_M * math.sin(heading_rad),
        pose.heading_deg,
    )


class RoamingController:
    """RSS-based handoff plus the inter-AP interference field.

    Nodes are re-evaluated in sorted id order every ``interval_s`` of
    simulated time; ties between equal-RSS APs break on ap id. All
    decisions are pure functions of poses and the hysteresis margin —
    no RNG — so handoff counts replay exactly.
    """

    def __init__(
        self,
        sim: NetworkSimulation,
        model: FleetLinkModel,
        aps: list[FleetAp],
        nodes: dict[str, FleetNode],
        interval_s: float = 0.05,
        hysteresis_db: float = 3.0,
        horizon_s: float | None = None,
    ) -> None:
        if len(aps) < 2:
            raise NetworkSimError("roaming needs at least two APs")
        if interval_s <= 0:
            raise NetworkSimError("roaming interval must be positive")
        if hysteresis_db < 0:
            raise NetworkSimError("hysteresis cannot be negative")
        self.sim = sim
        self.model = model
        self.aps = {ap.ap_id: ap for ap in aps}
        if len(self.aps) != len(aps):
            raise NetworkSimError("duplicate AP ids")
        self.nodes = nodes
        self.interval_s = interval_s
        self.hysteresis_db = hysteresis_db
        self.horizon_s = horizon_s
        self.handoffs = 0
        self.handoffs_by_node: dict[str, int] = {}

    # --- attachment ----------------------------------------------------------------

    def attach_all(self) -> None:
        """Give every node its best-RSS serving AP (initial attachment)."""
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            best = self._best_ap(node)
            node.serving_ap = best
            self.aps[best].members.append(node_id)

    def _best_ap(self, node: FleetNode) -> str:
        pose = node.pose_at(self.sim.now_s)
        # Ties break on ap id: sort ascending, take the max of
        # (rss, reversed-id preference) deterministically.
        best_id: str | None = None
        best_rss_dbm = -math.inf
        for ap_id in sorted(self.aps):
            rss_dbm = self.model.observe(self.aps[ap_id].pose, pose).rss_dbm
            if rss_dbm > best_rss_dbm:
                best_rss_dbm = rss_dbm
                best_id = ap_id
        assert best_id is not None
        return best_id

    # --- periodic handoff evaluation -----------------------------------------------

    def start(self) -> None:
        """Begin periodic handoff evaluation on the simulated clock."""
        self.sim.schedule(self.interval_s, self._tick)

    def _tick(self) -> None:
        now_s = self.sim.now_s
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            serving = node.serving_ap
            if serving is None:
                continue
            pose = node.pose_at(now_s)
            serving_rss_dbm = self.model.observe(self.aps[serving].pose, pose).rss_dbm
            for ap_id in sorted(self.aps):
                if ap_id == serving:
                    continue
                rss_dbm = self.model.observe(self.aps[ap_id].pose, pose).rss_dbm
                if rss_dbm > serving_rss_dbm + self.hysteresis_db:
                    self._handoff(node, serving, ap_id, serving_rss_dbm, rss_dbm)
                    break
        if self.horizon_s is None or now_s + self.interval_s <= self.horizon_s:
            self.sim.schedule(self.interval_s, self._tick)

    def _handoff(
        self,
        node: FleetNode,
        from_ap: str,
        to_ap: str,
        from_rss_dbm: float,
        to_rss_dbm: float,
    ) -> None:
        self.aps[from_ap].members.remove(node.node_id)
        self.aps[to_ap].members.append(node.node_id)
        node.serving_ap = to_ap
        self.handoffs += 1
        self.handoffs_by_node[node.node_id] = (
            self.handoffs_by_node.get(node.node_id, 0) + 1
        )
        obs.counter("netsim.handoffs").inc()
        self.sim.log(
            "netsim.handoff",
            node=node.node_id,
            from_ap=from_ap,
            to_ap=to_ap,
            from_rss_dbm=round(from_rss_dbm, 2),
            to_rss_dbm=round(to_rss_dbm, 2),
        )

    # --- interference --------------------------------------------------------------

    def interference_for(self, ap_id: str):
        """Interference field seen by ``ap_id``'s receiver.

        Returns a callable ``(time_s, node_pose) -> tuple[dBm, ...]``
        suitable for :class:`repro.netsim.fleet.FleetLink`: every other
        AP contributes its carrier through both horns' patterns, with
        the receiving AP steered at the node it is decoding and each
        interferer steered at its own boresight.
        """
        if ap_id not in self.aps:
            raise NetworkSimError(f"unknown AP {ap_id!r}")
        rx_ap = self.aps[ap_id]

        def field(time_s: float, node_pose: Pose2D) -> tuple[float, ...]:
            del time_s  # pointing is pose-derived; kept for the contract
            return tuple(
                self.model.ap_interference_dbm(
                    rx_ap.pose,
                    node_pose,
                    other.pose,
                    _boresight_target(other.pose),
                )
                for other_id, other in sorted(self.aps.items())
                if other_id != ap_id
            )

        return field
