"""Fleet-scale link fidelity: per-(AP, node) budgets, not waveforms.

A thousand-node simulation cannot afford per-node waveform synthesis;
what it needs from the physics is the *link budget* — and that is
already exact in :class:`repro.sim.linkbudget.LinkBudget`, which every
figure-reproduction waveform is scaled by. This module evaluates that
same budget per (AP pose, node pose) pair and reduces it to the three
quantities the network layer consumes:

* **RSS** [dBm] — the node's backscattered power at the AP's receiver,
  the quantity roaming hysteresis compares across APs;
* **uplink SNR/SINR** [dB] — RSS over kTB+NF in the symbol bandwidth
  (plus any inter-AP interference), which gates slot delivery through
  the same OOK BER bound the physical layer uses;
* **downlink SNR** [dB] — the node-side detector margin, calibrated to
  the paper's Fig. 14 operating point.

Evaluations are cached per model instance keyed by exact geometry, so
static fleets pay for each distinct pose once; the cache is bounded and
its traffic lands in ``cache.{hits,misses}{cache=netsim_link}``. All
outputs are pure functions of the inputs — no RNG, no wall clock — so
a scenario's link behaviour replays identically anywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import obs
from repro.antennas.dual_port_fsa import DualPortFsa
from repro.antennas.fixed import HornAntenna
from repro.channel.propagation import free_space_path_loss_db
from repro.channel.scene import NodePlacement, Scene2D
from repro.constants import (
    AP_HORN_GAIN_DBI,
    AP_TX_POWER_DBM,
    BAND_CENTER_HZ,
    BAND_START_HZ,
    BAND_STOP_HZ,
)
from repro.dsp.noise import thermal_noise_power_dbm
from repro.errors import NetworkSimError
from repro.hardware.switch import SpdtSwitch
from repro.sim.calibration import Calibration, default_calibration
from repro.sim.linkbudget import LinkBudget
from repro.utils.geometry import Pose2D, angle_between_deg

__all__ = ["LinkObservation", "FleetLinkModel"]

#: Node-side noise floor [dBm] referred to the detector input. Set so a
#: 2 m downlink runs ≈25 dB of SNR — the Fig. 14 operating point the
#: engine's full detector chain is calibrated against.
NODE_NOISE_FLOOR_DBM = -35.0


@dataclass(frozen=True)
class LinkObservation:
    """One (AP, node) link-budget evaluation."""

    distance_m: float
    azimuth_deg: float
    orientation_deg: float
    rss_dbm: float
    uplink_snr_db: float
    downlink_snr_db: float


class FleetLinkModel:
    """Cached link-budget evaluator shared by every actor in a scenario.

    One instance per scenario run: the cache (and its counters) is then
    a pure function of the scenario, so metric totals merge identically
    at any worker count.
    """

    def __init__(
        self,
        calibration: Calibration | None = None,
        frequency_hz: float = BAND_CENTER_HZ,
        symbol_bandwidth_hz: float = 10e6,
        tx_power_dbm: float = AP_TX_POWER_DBM,
        node_noise_floor_dbm: float = NODE_NOISE_FLOOR_DBM,
        cache_size: int = 65536,
    ) -> None:
        if symbol_bandwidth_hz <= 0:
            raise NetworkSimError("symbol bandwidth must be positive")
        if cache_size < 1:
            raise NetworkSimError("cache size must be at least 1")
        self.calibration = calibration or default_calibration()
        self.frequency_hz = frequency_hz
        self.symbol_bandwidth_hz = symbol_bandwidth_hz
        self.tx_power_dbm = tx_power_dbm
        self.node_noise_floor_dbm = node_noise_floor_dbm
        self._fsa = DualPortFsa()
        self._tx_horn = HornAntenna(AP_HORN_GAIN_DBI)
        self._rx_horn = HornAntenna(AP_HORN_GAIN_DBI)
        self._switch = SpdtSwitch()
        self._noise_floor_dbm = thermal_noise_power_dbm(
            symbol_bandwidth_hz, self.calibration.ap_noise_figure_db
        )
        self._cache: dict[tuple[float, float, float], LinkObservation] = {}
        self._cache_size = cache_size

    @property
    def ap_noise_floor_dbm(self) -> float:
        """kTB+NF in the symbol bandwidth at the AP receiver."""
        return self._noise_floor_dbm

    def observe(
        self,
        ap_pose: Pose2D,
        node_pose: Pose2D,
        blockage_db: float = 0.0,
    ) -> LinkObservation:
        """Evaluate the (AP, node) link budget at the given poses.

        ``blockage_db`` is a *one-way* LoS obstruction loss: it enters
        the downlink once and the backscatter round trip twice.

        The operating tone is *steered*: the FSA's beam direction is a
        function of frequency, so the AP queries each node at the
        port-A alignment frequency for that node's orientation (the
        paper's frequency-selective addressing). Orientations whose
        aligned tone falls outside the band get the nearest in-band
        tone and degrade through beam squint, exactly as the hardware
        would.
        """
        distance_m = ap_pose.distance_to(node_pose)
        azimuth_deg = ap_pose.relative_bearing_to(node_pose)
        orientation_deg = node_pose.relative_bearing_to(ap_pose)
        # The budget depends on geometry only through distance and
        # orientation (the AP steers at the node), so the cache key is
        # exact — a collision can only return the identical answer.
        key = (distance_m, orientation_deg, blockage_db)
        cached = self._cache.get(key)
        if cached is not None:
            obs.counter("cache.hits", cache="netsim_link").inc()
            return LinkObservation(
                distance_m,
                azimuth_deg,
                cached.orientation_deg,
                cached.rss_dbm,
                cached.uplink_snr_db,
                cached.downlink_snr_db,
            )
        obs.counter("cache.misses", cache="netsim_link").inc()
        aligned_hz = float(
            self._fsa.port_a.alignment_frequency_hz(orientation_deg)
        )
        tone_hz = min(max(aligned_hz, BAND_START_HZ), BAND_STOP_HZ)
        budget = LinkBudget(
            scene=Scene2D(ap_pose, (NodePlacement(node_pose, "node"),), ()),
            fsa=self._fsa,
            tx_horn=self._tx_horn,
            rx_horn=self._rx_horn,
            switch=self._switch,
            calibration=self.calibration,
            tx_power_dbm=self.tx_power_dbm,
            node_id="node",
        )
        uplink_gain_db = budget.backscatter_gain_db("A", tone_hz)
        downlink_gain_db = budget.downlink_port_gain_db("A", tone_hz)
        rss_dbm = self.tx_power_dbm + uplink_gain_db - 2.0 * blockage_db
        uplink_snr_db = min(
            rss_dbm - self._noise_floor_dbm, self.calibration.uplink_sinr_cap_db
        )
        downlink_snr_db = (
            self.tx_power_dbm
            + downlink_gain_db
            - blockage_db
            - self.node_noise_floor_dbm
        )
        observation = LinkObservation(
            distance_m=distance_m,
            azimuth_deg=azimuth_deg,
            orientation_deg=orientation_deg,
            rss_dbm=rss_dbm,
            uplink_snr_db=uplink_snr_db,
            downlink_snr_db=downlink_snr_db,
        )
        if len(self._cache) >= self._cache_size:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = observation
        return observation

    # --- inter-AP interference ----------------------------------------------------

    def ap_interference_dbm(
        self,
        rx_ap_pose: Pose2D,
        rx_target_pose: Pose2D,
        tx_ap_pose: Pose2D,
        tx_target_pose: Pose2D,
    ) -> float:
        """Power one AP's transmission couples into another AP's receiver.

        The receiving AP's horn points at the node it is serving, the
        interfering AP's horn at *its* target; both patterns attenuate
        the AP↔AP path at the respective angular offsets.
        """
        distance_m = tx_ap_pose.distance_to(rx_ap_pose)
        if distance_m <= 0:
            raise NetworkSimError("interfering APs cannot be co-located")
        tx_offset_deg = angle_between_deg(
            tx_ap_pose.bearing_to(rx_ap_pose), tx_ap_pose.bearing_to(tx_target_pose)
        )
        rx_offset_deg = angle_between_deg(
            rx_ap_pose.bearing_to(tx_ap_pose), rx_ap_pose.bearing_to(rx_target_pose)
        )
        return (
            self.tx_power_dbm
            + float(self._tx_horn.gain_dbi(tx_offset_deg, self.frequency_hz))
            + float(self._rx_horn.gain_dbi(rx_offset_deg, self.frequency_hz))
            - float(free_space_path_loss_db(distance_m, self.frequency_hz))
        )

    def uplink_sinr_db(
        self,
        observation: LinkObservation,
        interference_dbm: list[float] | tuple[float, ...] = (),
    ) -> float:
        """SINR [dB]: the observation's RSS over noise + interference."""
        noise_mw = 10.0 ** (self._noise_floor_dbm / 10.0)
        interference_mw = sum(10.0 ** (i / 10.0) for i in interference_dbm)
        denominator_dbm = 10.0 * math.log10(noise_mw + interference_mw)
        return min(
            observation.rss_dbm - denominator_dbm,
            self.calibration.uplink_sinr_cap_db,
        )
