"""Room presets: reusable clutter environments.

The paper evaluates in one office-like room; these presets give
examples and Monte-Carlo studies a small library of environments with
realistic 28 GHz radar cross-sections, plus a helper to drop nodes at
random plausible poses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.multipath import Reflector
from repro.channel.scene import NodePlacement, Scene2D
from repro.errors import ChannelError
from repro.utils.geometry import Point2D, Pose2D
from repro.utils.rng import RngLike, make_rng

__all__ = ["RoomPreset", "office", "lab", "warehouse", "random_node_scene"]


@dataclass(frozen=True)
class RoomPreset:
    """A named environment: extent plus clutter."""

    name: str
    depth_m: float  # +x extent from the AP
    half_width_m: float  # ±y extent
    clutter: tuple[Reflector, ...]

    def scene(self) -> Scene2D:
        """An empty-node scene with this room's clutter."""
        return Scene2D(clutter=self.clutter)


def office() -> RoomPreset:
    """The paper's environment: desks, chairs, a shelf, a back wall."""
    return RoomPreset(
        name="office",
        depth_m=9.0,
        half_width_m=4.0,
        clutter=(
            Reflector(Point2D(9.0, 1.5), rcs_dbsm=3.0, name="back-wall"),
            Reflector(Point2D(4.0, -2.5), rcs_dbsm=3.0, name="metal-shelf"),
            Reflector(Point2D(3.0, 1.8), rcs_dbsm=-3.0, name="desk"),
            Reflector(Point2D(5.5, 2.5), rcs_dbsm=-10.0, name="chair"),
        ),
    )


def lab() -> RoomPreset:
    """A dense lab: metal benches and instrument racks everywhere."""
    return RoomPreset(
        name="lab",
        depth_m=7.0,
        half_width_m=3.0,
        clutter=(
            Reflector(Point2D(7.0, 0.5), rcs_dbsm=5.0, name="back-wall"),
            Reflector(Point2D(2.5, -1.8), rcs_dbsm=6.0, name="rack-left"),
            Reflector(Point2D(2.5, 1.8), rcs_dbsm=6.0, name="rack-right"),
            Reflector(Point2D(4.5, -1.0), rcs_dbsm=2.0, name="bench"),
            Reflector(Point2D(5.5, 2.0), rcs_dbsm=0.0, name="scope-cart"),
        ),
    )


def warehouse() -> RoomPreset:
    """A warehouse aisle: big metal shelving, far end wall."""
    return RoomPreset(
        name="warehouse",
        depth_m=14.0,
        half_width_m=2.5,
        clutter=(
            Reflector(Point2D(14.0, 0.0), rcs_dbsm=8.0, name="end-wall"),
            Reflector(Point2D(5.0, -2.2), rcs_dbsm=10.0, name="shelving-left"),
            Reflector(Point2D(5.0, 2.2), rcs_dbsm=10.0, name="shelving-right"),
            Reflector(Point2D(10.0, -2.2), rcs_dbsm=10.0, name="shelving-left-far"),
            Reflector(Point2D(10.0, 2.2), rcs_dbsm=10.0, name="shelving-right-far"),
        ),
    )


def random_node_scene(
    room: RoomPreset,
    rng: RngLike = None,
    min_distance_m: float = 1.0,
    max_orientation_deg: float = 22.0,
    node_id: str = "node-0",
) -> Scene2D:
    """Drop one node at a random plausible pose inside the room.

    The node lands inside the room's extent (at least ``min_distance_m``
    from the AP) with a random orientation within the FSA's usable scan.
    """
    if min_distance_m <= 0:
        raise ChannelError("minimum distance must be positive")
    rng = make_rng(rng)
    for _ in range(100):
        x = float(rng.uniform(min_distance_m, room.depth_m - 0.5))
        y = float(rng.uniform(-room.half_width_m, room.half_width_m))
        if float(np.hypot(x, y)) >= min_distance_m:
            break
    else:  # pragma: no cover - geometry always admits a point
        raise ChannelError("could not place a node in the room")
    azimuth = float(np.degrees(np.arctan2(y, x)))
    orientation = float(rng.uniform(-max_orientation_deg, max_orientation_deg))
    heading = azimuth + 180.0 - orientation
    return Scene2D(
        nodes=(NodePlacement(Pose2D.at(x, y, heading), node_id),),
        clutter=room.clutter,
    )
