"""Propagation, clutter and the 2-D scene model."""

from repro.channel.propagation import (
    free_space_path_loss_db,
    propagation_delay_s,
    propagation_phase_rad,
    friis_received_power_dbm,
    backscatter_received_power_dbm,
    clutter_received_power_dbm,
    complex_path_gain,
)
from repro.channel.multipath import Reflector, PathComponent, default_indoor_clutter
from repro.channel.scene import Scene2D, NodePlacement
from repro.channel.atmosphere import (
    AtmosphereModel,
    gaseous_attenuation_db_per_km,
    rain_attenuation_db_per_km,
    fog_attenuation_db_per_km,
)
from repro.channel.rooms import (
    RoomPreset,
    office,
    lab,
    warehouse,
    random_node_scene,
)
from repro.channel.mobility import (
    Waypoint,
    WaypointTrajectory,
    BlockageEvent,
    BlockageModel,
)

__all__ = [
    "free_space_path_loss_db",
    "propagation_delay_s",
    "propagation_phase_rad",
    "friis_received_power_dbm",
    "backscatter_received_power_dbm",
    "clutter_received_power_dbm",
    "complex_path_gain",
    "Reflector",
    "PathComponent",
    "default_indoor_clutter",
    "Scene2D",
    "NodePlacement",
    "Waypoint",
    "WaypointTrajectory",
    "BlockageEvent",
    "BlockageModel",
    "AtmosphereModel",
    "gaseous_attenuation_db_per_km",
    "rain_attenuation_db_per_km",
    "fog_attenuation_db_per_km",
    "RoomPreset",  # milback: disable=ML014 — public scene-configuration type
    "office",
    "lab",
    "warehouse",
    "random_node_scene",
]
