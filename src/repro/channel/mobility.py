"""Node mobility and LoS blockage.

mmWave links live and die by line of sight: a human body costs 20–40 dB
at 28 GHz, which at backscatter budgets means outage. This module gives
the simulator time-varying geometry (trajectories) and time-varying
blockage (events), so examples and benchmarks can study outage/recovery
behaviour — the dynamics behind the paper's VR/AR motivation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ChannelError
from repro.utils.geometry import Pose2D, wrap_angle_deg

__all__ = ["Waypoint", "WaypointTrajectory", "BlockageEvent", "BlockageModel"]


@dataclass(frozen=True)
class Waypoint:
    """A timed pose sample along a trajectory."""

    time_s: float
    pose: Pose2D


class WaypointTrajectory:
    """Piecewise-linear interpolation through timed waypoints.

    Position interpolates linearly; heading interpolates along the
    shortest angular arc.
    """

    def __init__(self, waypoints: Sequence[Waypoint]) -> None:
        if len(waypoints) < 2:
            raise ChannelError("a trajectory needs at least two waypoints")
        times = [w.time_s for w in waypoints]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ChannelError("waypoint times must strictly increase")
        self.waypoints = list(waypoints)
        self._times = times

    @property
    def start_time_s(self) -> float:
        return self._times[0]

    @property
    def end_time_s(self) -> float:
        return self._times[-1]

    def pose_at(self, time_s: float) -> Pose2D:
        """Interpolated pose (clamped to the trajectory's time span)."""
        if time_s <= self._times[0]:
            return self.waypoints[0].pose
        if time_s >= self._times[-1]:
            return self.waypoints[-1].pose
        i = bisect.bisect_right(self._times, time_s) - 1
        a, b = self.waypoints[i], self.waypoints[i + 1]
        frac = (time_s - a.time_s) / (b.time_s - a.time_s)
        x = a.pose.position.x + frac * (b.pose.position.x - a.pose.position.x)
        y = a.pose.position.y + frac * (b.pose.position.y - a.pose.position.y)
        turn = wrap_angle_deg(b.pose.heading_deg - a.pose.heading_deg)
        heading = wrap_angle_deg(a.pose.heading_deg + frac * turn)
        return Pose2D.at(x, y, heading)

    def speed_at(self, time_s: float, dt: float = 1e-3) -> float:
        """Finite-difference speed [m/s]."""
        p0 = self.pose_at(time_s - dt / 2)
        p1 = self.pose_at(time_s + dt / 2)
        return p0.distance_to(p1) / dt


@dataclass(frozen=True)
class BlockageEvent:
    """One LoS obstruction interval."""

    start_s: float
    duration_s: float
    loss_db: float = 25.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ChannelError("blockage duration must be positive")
        if self.loss_db < 0:
            raise ChannelError("blockage loss cannot be negative")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active_at(self, time_s: float) -> bool:
        return self.start_s <= time_s < self.end_s


@dataclass
class BlockageModel:
    """A set of blockage events; losses of overlapping events add."""

    events: list[BlockageEvent] = field(default_factory=list)

    def add(self, event: BlockageEvent) -> None:
        self.events.append(event)

    def loss_db_at(self, time_s: float) -> float:
        """Total one-way blockage loss at ``time_s`` [dB]."""
        return sum(e.loss_db for e in self.events if e.active_at(time_s))

    def blocked_fraction(self, start_s: float, end_s: float, step_s: float = 0.01) -> float:
        """Fraction of [start, end) with any blockage active."""
        if end_s <= start_s:
            raise ChannelError("interval must be increasing")
        n = max(int(round((end_s - start_s) / step_s)), 1)
        blocked = sum(
            1 for k in range(n) if self.loss_db_at(start_s + (k + 0.5) * step_s) > 0
        )
        return blocked / n

    @classmethod
    def pedestrian_crossings(
        cls,
        crossing_times_s: Sequence[float],
        duration_s: float = 0.4,
        loss_db: float = 25.0,
    ) -> "BlockageModel":
        """People walking through the LoS: ~0.4 s shadows of ~25 dB."""
        return cls([BlockageEvent(t, duration_s, loss_db) for t in crossing_times_s])
