"""Environmental clutter and multipath paths.

The paper's indoor evaluation has "tables, chairs, and shelves" (§9)
whose reflections dwarf the node's and must be removed by background
subtraction (§5.1). A :class:`Reflector` is a static scatterer with a
radar cross-section; :class:`PathComponent` is the resolved contribution
one scatterer (or the node) makes to a received waveform.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ChannelError
from repro.utils.geometry import Point2D

__all__ = ["Reflector", "PathComponent", "default_indoor_clutter"]


@dataclass(frozen=True)
class Reflector:
    """A static environmental scatterer.

    Attributes:
        position: location in the scene plane.
        rcs_dbsm: radar cross-section in dB relative to 1 m². Typical
            indoor furniture spans roughly −15 (chair) to +10 (wall/metal
            shelf) dBsm at 28 GHz.
        name: label for traces and reports.
    """

    position: Point2D
    rcs_dbsm: float
    name: str = "reflector"

    def __post_init__(self) -> None:
        if not -60.0 <= self.rcs_dbsm <= 40.0:
            raise ChannelError(
                f"RCS {self.rcs_dbsm} dBsm outside the plausible indoor range"
            )


@dataclass(frozen=True)
class PathComponent:
    """One resolved propagation path at the receiver.

    Attributes:
        delay_s: total propagation delay.
        gain: complex amplitude factor (|gain|² = power gain).
        modulated: True when the path passes through the node's switched
            aperture (it survives background subtraction); False for
            static clutter and self-interference.
        label: human-readable origin of the path.
    """

    delay_s: float
    gain: complex
    modulated: bool = False
    label: str = "path"


def default_indoor_clutter() -> list[Reflector]:
    """A representative office: wall, metal shelf, desk, chair.

    Geometry roughly matches an 8×6 m room with the AP at the origin
    looking down +x, the strongest return being the back wall.
    """
    return [
        Reflector(Point2D(9.0, 1.5), rcs_dbsm=3.0, name="back-wall"),
        Reflector(Point2D(4.0, -2.5), rcs_dbsm=3.0, name="metal-shelf"),
        Reflector(Point2D(3.0, 1.8), rcs_dbsm=-3.0, name="desk"),
        Reflector(Point2D(5.5, 2.5), rcs_dbsm=-10.0, name="chair"),
    ]
