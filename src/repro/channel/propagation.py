"""Free-space propagation and link budgets at mmWave.

Everything the paper's ranges and SNRs rest on: the Friis equation for
the one-way downlink, a double-Friis backscatter budget for the uplink,
and the radar equation for environmental clutter.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ChannelError

__all__ = [
    "free_space_path_loss_db",
    "propagation_delay_s",
    "propagation_phase_rad",
    "friis_received_power_dbm",
    "backscatter_received_power_dbm",
    "clutter_received_power_dbm",
    "complex_path_gain",
]


def free_space_path_loss_db(distance_m, frequency_hz):
    """One-way free-space path loss 20 log10(4π d f / c) [dB]."""
    d = np.asarray(distance_m, dtype=float)
    f = np.asarray(frequency_hz, dtype=float)
    if np.any(d <= 0):
        raise ChannelError("distance must be positive")
    if np.any(f <= 0):
        raise ChannelError("frequency must be positive")
    loss = 20.0 * np.log10(4.0 * np.pi * d * f / SPEED_OF_LIGHT)
    return loss if loss.ndim else float(loss)


def propagation_delay_s(distance_m: float) -> float:
    """One-way propagation delay d/c [s]."""
    if distance_m < 0:
        raise ChannelError("distance must be non-negative")
    return distance_m / SPEED_OF_LIGHT


def propagation_phase_rad(distance_m: float, frequency_hz: float) -> float:
    """Carrier phase accumulated over ``distance_m`` (−2π d / λ)."""
    lam = SPEED_OF_LIGHT / frequency_hz
    return -2.0 * math.pi * distance_m / lam


def friis_received_power_dbm(
    tx_power_dbm: float,
    tx_gain_dbi: float,
    rx_gain_dbi: float,
    distance_m: float,
    frequency_hz: float,
    extra_loss_db: float = 0.0,
) -> float:
    """One-way Friis link budget [dBm]."""
    return (
        tx_power_dbm
        + tx_gain_dbi
        + rx_gain_dbi
        - float(free_space_path_loss_db(distance_m, frequency_hz))
        - extra_loss_db
    )


def backscatter_received_power_dbm(
    tx_power_dbm: float,
    ap_tx_gain_dbi: float,
    ap_rx_gain_dbi: float,
    node_gain_in_dbi: float,
    node_gain_out_dbi: float,
    distance_m: float,
    frequency_hz: float,
    modulation_loss_db: float = 0.0,
    extra_loss_db: float = 0.0,
) -> float:
    """Two-way backscatter budget: AP → node → AP [dBm].

    The node's antenna gain counts twice (capture and re-radiation), and
    the path loss counts twice — the 1/d⁴ law behind the uplink's faster
    roll-off versus downlink (paper §9.5).
    """
    fspl = float(free_space_path_loss_db(distance_m, frequency_hz))
    return (
        tx_power_dbm
        + ap_tx_gain_dbi
        + node_gain_in_dbi
        + node_gain_out_dbi
        + ap_rx_gain_dbi
        - 2.0 * fspl
        - modulation_loss_db
        - extra_loss_db
    )


def clutter_received_power_dbm(
    tx_power_dbm: float,
    tx_gain_dbi: float,
    rx_gain_dbi: float,
    distance_m: float,
    frequency_hz: float,
    rcs_dbsm: float,
) -> float:
    """Radar-equation return from an environmental reflector [dBm].

    Pr = Pt Gt Gr λ² σ / ((4π)³ d⁴) — walls and furniture returns that the
    AP's background subtraction must cancel.
    """
    if distance_m <= 0:
        raise ChannelError("distance must be positive")
    lam = SPEED_OF_LIGHT / frequency_hz
    fixed_db = (
        tx_power_dbm
        + tx_gain_dbi
        + rx_gain_dbi
        + 20.0 * math.log10(lam)
        + rcs_dbsm
        - 30.0 * math.log10(4.0 * math.pi)
        - 40.0 * math.log10(distance_m)
    )
    return fixed_db


def complex_path_gain(
    gain_db: float,
    distance_m: float,
    frequency_hz: float,
) -> complex:
    """Amplitude+phase factor for one propagation path.

    ``gain_db`` is the total power gain of the path (antennas − losses −
    path loss); the phase is the carrier phase over the path length.
    """
    amplitude = 10.0 ** (gain_db / 20.0)
    return amplitude * np.exp(1j * propagation_phase_rad(distance_m, frequency_hz))
