"""2-D world model: AP, nodes, clutter, and their geometry.

The scene answers all geometric questions the simulator asks — distances,
the azimuth of a node as seen by the AP, and the node's *orientation*
(the angle between its FSA broadside and the node→AP direction), which is
the quantity MilBack senses and exploits for OAQFM.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.channel.multipath import Reflector, default_indoor_clutter
from repro.errors import ChannelError
from repro.utils.geometry import Pose2D

__all__ = ["NodePlacement", "Scene2D"]


@dataclass(frozen=True)
class NodePlacement:
    """A backscatter node's pose within a scene."""

    pose: Pose2D
    node_id: str = "node-0"


@dataclass(frozen=True)
class Scene2D:
    """AP + nodes + clutter in one plane.

    The AP sits at ``ap_pose`` with its boresight along its heading.
    """

    ap_pose: Pose2D = field(default_factory=lambda: Pose2D.at(0.0, 0.0, 0.0))
    nodes: tuple[NodePlacement, ...] = ()
    clutter: tuple[Reflector, ...] = ()

    # --- construction helpers -------------------------------------------------

    @classmethod
    def single_node(
        cls,
        distance_m: float,
        azimuth_deg: float = 0.0,
        orientation_deg: float = 0.0,
        with_clutter: bool = True,
        node_id: str = "node-0",
    ) -> "Scene2D":
        """The paper's canonical setup: one node at a given distance and
        azimuth from the AP, rotated so its broadside is ``orientation_deg``
        away from facing the AP squarely.
        """
        if distance_m <= 0:
            raise ChannelError("distance must be positive")
        import math

        x = distance_m * math.cos(math.radians(azimuth_deg))
        y = distance_m * math.sin(math.radians(azimuth_deg))
        # Facing the AP squarely means heading_deg = bearing(node→AP); an
        # orientation of θ rotates broadside θ away from that.
        facing_ap_deg = azimuth_deg + 180.0
        heading_deg = facing_ap_deg - orientation_deg
        node = NodePlacement(Pose2D.at(x, y, heading_deg), node_id)
        clutter = tuple(default_indoor_clutter()) if with_clutter else ()
        return cls(Pose2D.at(0.0, 0.0, 0.0), (node,), clutter)

    def with_node(self, placement: NodePlacement) -> "Scene2D":
        """A copy with one more node."""
        return replace(self, nodes=self.nodes + (placement,))

    def with_clutter(self, reflector: Reflector) -> "Scene2D":
        """A copy with one more clutter reflector."""
        return replace(self, clutter=self.clutter + (reflector,))

    def without_clutter(self) -> "Scene2D":
        """A copy with all clutter removed (anechoic-chamber condition)."""
        return replace(self, clutter=())

    # --- geometry queries -------------------------------------------------------

    def node(self, node_id: str | None = None) -> NodePlacement:
        """Fetch a node by id (or the only node when unambiguous)."""
        if not self.nodes:
            raise ChannelError("scene has no nodes")
        if node_id is None:
            if len(self.nodes) > 1:
                raise ChannelError("scene has multiple nodes; specify node_id")
            return self.nodes[0]
        for placement in self.nodes:
            if placement.node_id == node_id:
                return placement
        raise ChannelError(f"no node with id {node_id!r}")

    def node_distance_m(self, node_id: str | None = None) -> float:
        """AP↔node distance."""
        return self.ap_pose.distance_to(self.node(node_id).pose)

    def node_azimuth_deg(self, node_id: str | None = None) -> float:
        """Azimuth of the node relative to the AP's boresight."""
        return self.ap_pose.relative_bearing_to(self.node(node_id).pose)

    def node_orientation_deg(self, node_id: str | None = None) -> float:
        """The node's orientation with respect to the AP (0 = facing it)."""
        placement = self.node(node_id)
        return placement.pose.relative_bearing_to(self.ap_pose)

    def ap_bearing_at_node_deg(self, node_id: str | None = None) -> float:
        """Alias of :meth:`node_orientation_deg`; reads better in
        node-side code."""
        return self.node_orientation_deg(node_id)

    def clutter_geometry(self) -> list[tuple[Reflector, float, float]]:
        """[(reflector, distance from AP, azimuth off AP boresight)] for
        every clutter element."""
        out = []
        for reflector in self.clutter:
            pose = Pose2D(reflector.position, 0.0)
            out.append(
                (
                    reflector,
                    self.ap_pose.distance_to(pose),
                    self.ap_pose.relative_bearing_to(pose),
                )
            )
        return out
