"""Atmospheric attenuation at mmWave: gases, rain, fog.

Indoors (the paper's evaluation) these are negligible — fractions of a
dB over 10 m. They matter for the deployment stories the paper's
conclusion points at (5G/6G access points, automotive radar): at 28 GHz
heavy rain costs several dB/km, and around the 60 GHz oxygen line the
air itself absorbs ~15 dB/km. Simplified engineering fits in the spirit
of ITU-R P.676 (gases) and P.838 (rain); accurate to ~20% in the bands
this package simulates, which is all a link budget needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ChannelError

__all__ = [
    "gaseous_attenuation_db_per_km",
    "rain_attenuation_db_per_km",
    "fog_attenuation_db_per_km",
    "AtmosphereModel",
]


def gaseous_attenuation_db_per_km(frequency_hz: float) -> float:
    """Clear-air (oxygen + water vapour) specific attenuation [dB/km].

    Piecewise engineering fit: a gentle floor away from resonances plus
    a Lorentzian bump for the 60 GHz oxygen complex and the rising edge
    of the 119 GHz line. Standard atmosphere, 7.5 g/m³ water vapour.
    """
    f_ghz = frequency_hz / 1e9
    if not 1.0 <= f_ghz <= 120.0:
        raise ChannelError(f"frequency {f_ghz:.1f} GHz outside the model's range")
    # Background: dry air + water-vapour continuum (rises with f^2-ish).
    background = 0.008 + 6.5e-5 * f_ghz**1.9
    # 22.235 GHz water-vapour line (small bump).
    water = 0.18 / (1.0 + ((f_ghz - 22.235) / 2.5) ** 2)
    # 60 GHz oxygen complex (the big one: ~15 dB/km at the peak).
    oxygen = 15.0 / (1.0 + ((f_ghz - 60.0) / 4.0) ** 2)
    return background + water + oxygen


def rain_attenuation_db_per_km(frequency_hz: float, rain_rate_mm_per_h: float) -> float:
    """Rain specific attenuation k·R^α [dB/km] (ITU-R P.838 shape).

    The coefficients are interpolated on a small table spanning
    10–100 GHz (horizontal polarization).
    """
    if rain_rate_mm_per_h < 0:
        raise ChannelError("rain rate cannot be negative")
    if rain_rate_mm_per_h == 0:
        return 0.0
    f_ghz = frequency_hz / 1e9
    if not 1.0 <= f_ghz <= 120.0:
        raise ChannelError(f"frequency {f_ghz:.1f} GHz outside the model's range")
    # (f_GHz, k, alpha) — ITU-R P.838-3 values, horizontal polarization.
    table = [
        (10.0, 0.01217, 1.2571),
        (20.0, 0.09164, 1.0568),
        (30.0, 0.2403, 0.9485),
        (40.0, 0.4431, 0.8673),
        (60.0, 0.8606, 0.7656),
        (80.0, 1.2216, 0.7115),
        (100.0, 1.4677, 0.6815),
    ]
    if f_ghz <= table[0][0]:
        _, k, alpha = table[0]
    elif f_ghz >= table[-1][0]:
        _, k, alpha = table[-1]
    else:
        for (f0, k0, a0), (f1, k1, a1) in zip(table[:-1], table[1:]):
            if f0 <= f_ghz <= f1:
                frac = (f_ghz - f0) / (f1 - f0)
                # Interpolate k logarithmically (it spans decades), alpha
                # linearly.
                k = math.exp(math.log(k0) + frac * (math.log(k1) - math.log(k0)))
                alpha = a0 + frac * (a1 - a0)
                break
    return k * rain_rate_mm_per_h**alpha


def fog_attenuation_db_per_km(
    frequency_hz: float, liquid_water_g_per_m3: float = 0.05
) -> float:
    """Cloud/fog attenuation (Rayleigh regime): ~K·M·f² [dB/km].

    0.05 g/m³ is light fog (~300 m visibility); dense fog reaches 0.5.
    """
    if liquid_water_g_per_m3 < 0:
        raise ChannelError("liquid water content cannot be negative")
    f_ghz = frequency_hz / 1e9
    # K ~ 0.4*(f/30)^2 dB/km per g/m^3 at mmWave, 20 C.
    return 0.4 * (f_ghz / 30.0) ** 2 * liquid_water_g_per_m3


@dataclass(frozen=True)
class AtmosphereModel:
    """Weather condition for a link budget.

    ``one_way_loss_db(distance, frequency)`` is what LinkBudget-level
    code adds per path traversal.
    """

    rain_rate_mm_per_h: float = 0.0
    fog_water_g_per_m3: float = 0.0
    include_gases: bool = True

    def specific_attenuation_db_per_km(self, frequency_hz: float) -> float:
        """Total specific attenuation of this condition [dB/km]."""
        total = 0.0
        if self.include_gases:
            total += gaseous_attenuation_db_per_km(frequency_hz)
        total += rain_attenuation_db_per_km(frequency_hz, self.rain_rate_mm_per_h)
        total += fog_attenuation_db_per_km(frequency_hz, self.fog_water_g_per_m3)
        return total

    def one_way_loss_db(self, distance_m: float, frequency_hz: float) -> float:
        """Excess loss over ``distance_m`` [dB]."""
        if distance_m < 0:
            raise ChannelError("distance cannot be negative")
        return self.specific_attenuation_db_per_km(frequency_hz) * distance_m / 1e3

    @classmethod
    def clear(cls) -> "AtmosphereModel":
        """Clear air."""
        return cls()

    @classmethod
    def heavy_rain(cls) -> "AtmosphereModel":
        """25 mm/h downpour."""
        return cls(rain_rate_mm_per_h=25.0)

    @classmethod
    def dense_fog(cls) -> "AtmosphereModel":
        """0.5 g/m³ liquid water (~50 m visibility)."""
        return cls(fog_water_g_per_m3=0.5)
