"""MilBack: a millimeter wave backscatter network for two-way
communication and localization.

Reproduction of Lu, Mazaheri, Rezvani & Abari (ACM SIGCOMM 2023). The
package simulates the complete system — dual-port frequency-scanning
antenna, backscatter node, FMCW access point, OAQFM modulation, and the
joint communication/localization protocol — at physics level.

Quickstart::

    from repro import Scene2D, MilBackSimulator, MilBackLink

    scene = Scene2D.single_node(distance_m=3.0, orientation_deg=10.0)
    link = MilBackLink(MilBackSimulator(scene, seed=1))
    fix = link.localize()
    reply = link.receive_from_node(b"hello from the tag")
"""

from repro.channel.scene import Scene2D, NodePlacement
from repro.channel.multipath import Reflector
from repro.sim.engine import (
    MilBackSimulator,
    LocalizationResult,
    ApOrientationResult,
    NodeOrientationResult,
    DownlinkResult,
    UplinkResult,
)
from repro.sim.calibration import Calibration, default_calibration
from repro.node.node import BackscatterNode
from repro.node.config import NodeConfig
from repro.ap.access_point import AccessPoint
from repro.ap.config import ApConfig
from repro.antennas.fsa import FsaDesign, FsaPort, FrequencyScanningAntenna
from repro.antennas.dual_port_fsa import DualPortFsa, TonePair
from repro.protocol.link import MilBackLink, SessionResult
from repro.protocol.packet import Packet, PacketSchedule
from repro.protocol.mac import SdmScheduler
from repro.protocol.adaptation import UplinkRateAdapter
from repro.protocol.discovery import BeamScanDiscovery, Detection
from repro.phy.dense_oaqfm import DenseOaqfmScheme
from repro.tracking.kalman import ConstantVelocityTracker
from repro.errors import MilBackError

__version__ = "1.0.0"

__all__ = [
    "Scene2D",
    "NodePlacement",
    "Reflector",
    "MilBackSimulator",
    "LocalizationResult",
    "ApOrientationResult",
    "NodeOrientationResult",
    "DownlinkResult",
    "UplinkResult",
    "Calibration",
    "default_calibration",
    "BackscatterNode",
    "NodeConfig",
    "AccessPoint",
    "ApConfig",
    "FsaDesign",
    "FsaPort",
    "FrequencyScanningAntenna",
    "DualPortFsa",
    "TonePair",
    "MilBackLink",
    "SessionResult",
    "Packet",
    "PacketSchedule",
    "SdmScheduler",
    "UplinkRateAdapter",
    "BeamScanDiscovery",
    "Detection",
    "DenseOaqfmScheme",
    "ConstantVelocityTracker",
    "MilBackError",
    "__version__",  # milback: disable=ML014 — package metadata
]
