"""Bit-error-rate theory and measurement.

The paper annotates its SNR curves with BER levels (Figs. 14, 15). Those
annotations are consistent with the matched-filter on-off-keying bound
BER = Q(√(2·SNR)) — e.g. 12 dB ↔ 1e-8 (Fig. 14) — so that is the
"theory" curve here, alongside the noncoherent envelope-detection bound
for comparison, and a Monte-Carlo counter for measured links.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.errors import ConfigurationError

__all__ = [
    "FloatOrArray",  # milback: disable=ML014 — public result type
    "q_function",
    "ook_matched_filter_ber",
    "ook_noncoherent_ber",
    "snr_for_target_ber",
    "measure_ber",
]


#: Scalar-in → scalar-out, array-in → array-out.
FloatOrArray = Union[float, NDArray[np.float64]]


def q_function(x: ArrayLike) -> FloatOrArray:
    """Gaussian tail probability Q(x)."""
    arr = np.asarray(x, dtype=float)
    result = 0.5 * np.vectorize(math.erfc)(arr / math.sqrt(2.0))
    return result if result.ndim else float(result)


def ook_matched_filter_ber(snr_db: ArrayLike) -> FloatOrArray:
    """Matched-filter OOK with optimal threshold: BER = Q(√(2·SNR)).

    SNR is the post-integration symbol SNR. This mapping reproduces the
    paper's annotations: 12 dB → ~1e-8, 8 dB → ~2e-4.
    """
    snr = np.power(10.0, np.asarray(snr_db, dtype=float) / 10.0)
    return q_function(np.sqrt(2.0 * snr))


def ook_noncoherent_ber(snr_db: ArrayLike) -> FloatOrArray:
    """Noncoherent envelope-detected OOK bound: BER ≈ ½·exp(−SNR/2)."""
    snr = np.power(10.0, np.asarray(snr_db, dtype=float) / 10.0)
    result = 0.5 * np.exp(-snr / 2.0)
    return result if result.ndim else float(result)


def snr_for_target_ber(target_ber: float) -> float:
    """Invert :func:`ook_matched_filter_ber`: SNR [dB] achieving the
    target BER. Bisection over a generous range."""
    if not 0.0 < target_ber < 0.5:
        raise ConfigurationError("target BER must be in (0, 0.5)")
    lo, hi = -30.0, 40.0
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if ook_matched_filter_ber(mid) > target_ber:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def measure_ber(tx_bits: Sequence[int], rx_bits: Sequence[int]) -> float:
    """Fraction of differing bits (lengths must match)."""
    tx = np.asarray(tx_bits, dtype=np.uint8)
    rx = np.asarray(rx_bits, dtype=np.uint8)
    if tx.size != rx.size:
        raise ConfigurationError(
            f"bit streams differ in length: {tx.size} vs {rx.size}"
        )
    if tx.size == 0:
        raise ConfigurationError("empty bit streams")
    return float(np.count_nonzero(tx != rx)) / tx.size
