"""Dense OAQFM: multi-amplitude tones for more bits per symbol.

The paper's §9.4 names the extension path: "define denser OAQFM
modulation schemes, where each symbol represents more bits by
considering different amplitudes for each tone". With L amplitude
levels per tone, a symbol carries 2·log2(L) bits; the node still needs
nothing but its two envelope detectors, because a linear detector's
output is proportional to amplitude and multi-level slicing stays a
threshold comparison.

Dense OAQFM is downlink-only: the node's reflective/absorptive switch
is binary, so the uplink alphabet stays at 2 bits/symbol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.errors import ConfigurationError, DecodingError

__all__ = ["DenseOaqfmScheme", "dense_symbol_levels", "decode_dense_levels"]


@dataclass(frozen=True)
class DenseOaqfmScheme:
    """A dense OAQFM constellation.

    Attributes:
        levels_per_tone: L amplitude levels per tone, including "off".
            L = 2 reduces to classic OAQFM; L = 4 carries 4 bits/symbol.
    """

    levels_per_tone: int = 4

    def __post_init__(self) -> None:
        if self.levels_per_tone < 2:
            raise ConfigurationError("need at least 2 levels (on/off)")
        if self.levels_per_tone & (self.levels_per_tone - 1):
            raise ConfigurationError("levels_per_tone must be a power of two")

    @property
    def bits_per_tone(self) -> int:
        """log2(L) bits carried by each tone's amplitude."""
        return int(math.log2(self.levels_per_tone))

    @property
    def bits_per_symbol(self) -> int:
        """Two tones per symbol."""
        return 2 * self.bits_per_tone

    def amplitude_for_level(self, level: int) -> float:
        """Equally spaced amplitude for a level index (0 = off, L-1 = full).

        Equal *amplitude* spacing is the right choice for a linear
        envelope detector: the decision distances at the output are then
        uniform.
        """
        if not 0 <= level < self.levels_per_tone:
            raise ConfigurationError(f"level {level} out of range")
        return level / (self.levels_per_tone - 1)

    def level_for_bits(self, bits: Sequence[int]) -> int:
        """Gray-map ``bits_per_tone`` bits to a level index.

        Gray coding makes adjacent amplitude errors cost one bit.
        """
        if len(bits) != self.bits_per_tone:
            raise ConfigurationError("wrong number of bits for one tone")
        binary = 0
        for b in bits:
            binary = (binary << 1) | int(b)
        # Gray decode the natural index: level = gray^-1(binary).
        level = binary
        shift = 1
        while (binary >> shift) > 0:
            level ^= binary >> shift
            shift += 1
        return level

    def bits_for_level(self, level: int) -> list[int]:
        """Inverse of :meth:`level_for_bits` (Gray encode)."""
        if not 0 <= level < self.levels_per_tone:
            raise ConfigurationError(f"level {level} out of range")
        gray = level ^ (level >> 1)
        return [(gray >> (self.bits_per_tone - 1 - i)) & 1 for i in range(self.bits_per_tone)]


def dense_symbol_levels(
    bits: Sequence[int],
    scheme: DenseOaqfmScheme,
) -> tuple[NDArray[np.int_], NDArray[np.int_]]:
    """Map a bit stream to per-symbol (tone A level, tone B level) arrays.

    Bits are zero-padded to a whole number of symbols. Within a symbol
    the first ``bits_per_tone`` bits ride tone A.
    """
    if len(bits) == 0:
        raise ConfigurationError("no bits to modulate")
    padded = [int(b) for b in bits]
    if any(b not in (0, 1) for b in padded):
        raise ConfigurationError("bits must be 0/1")
    per_symbol = scheme.bits_per_symbol
    while len(padded) % per_symbol:
        padded.append(0)
    n_symbols = len(padded) // per_symbol
    levels_a = np.empty(n_symbols, dtype=int)
    levels_b = np.empty(n_symbols, dtype=int)
    half = scheme.bits_per_tone
    for k in range(n_symbols):
        chunk = padded[k * per_symbol : (k + 1) * per_symbol]
        levels_a[k] = scheme.level_for_bits(chunk[:half])
        levels_b[k] = scheme.level_for_bits(chunk[half:])
    return levels_a, levels_b


def decode_dense_levels(
    measured_a: ArrayLike,
    measured_b: ArrayLike,
    scheme: DenseOaqfmScheme,
) -> NDArray[np.uint8]:
    """Slice measured per-symbol detector levels back to bits.

    The full-scale reference is estimated per port from the strongest
    symbols (a preamble in a deployed link; here the payload itself is
    long enough). Levels quantize to the nearest constellation point.
    """
    arr_a = np.asarray(measured_a, dtype=float)
    arr_b = np.asarray(measured_b, dtype=float)
    if arr_a.size != arr_b.size:
        raise DecodingError("port level streams differ in length")
    if arr_a.size == 0:
        raise DecodingError("no symbols to decode")
    ref_a = _full_scale_estimate(arr_a, scheme)
    ref_b = _full_scale_estimate(arr_b, scheme)
    out = np.empty(arr_a.size * scheme.bits_per_symbol, dtype=np.uint8)
    for k in range(arr_a.size):
        level_a = _nearest_level(float(arr_a[k]), ref_a, scheme)
        level_b = _nearest_level(float(arr_b[k]), ref_b, scheme)
        symbol_bits = scheme.bits_for_level(level_a) + scheme.bits_for_level(level_b)
        out[k * scheme.bits_per_symbol : (k + 1) * scheme.bits_per_symbol] = symbol_bits
    return out


def _full_scale_estimate(levels: NDArray[np.float64], scheme: DenseOaqfmScheme) -> float:
    """Robust full-scale amplitude: mean of the top decile of symbols.

    Assumes the burst contains at least a few full-amplitude symbols —
    guaranteed by a preamble in practice.
    """
    top = np.sort(levels)[-max(levels.size // 10, 1):]
    estimate = float(np.mean(top))
    if estimate <= 0:
        raise DecodingError("no signal energy to reference against")
    return estimate


def _nearest_level(measured: float, full_scale: float, scheme: DenseOaqfmScheme) -> int:
    normalized = measured / full_scale
    level = int(round(normalized * (scheme.levels_per_tone - 1)))
    return int(np.clip(level, 0, scheme.levels_per_tone - 1))
