"""Additive (synchronous) scrambling.

Long runs of identical bits are the envelope decoder's worst case: an
all-zeros payload gives the threshold estimator a single cluster and the
timing-recovery statistic nothing to lock to. XORing the frame with a
known LFSR sequence whitens any payload; the same operation descrambles.
Polynomial x⁷+x⁴+1 (the classic V.27/802.11-style choice).
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.errors import ConfigurationError

__all__ = ["lfsr_sequence", "scramble", "descramble", "DEFAULT_SEED"]

#: Non-zero 7-bit LFSR seed used across the stack.
DEFAULT_SEED: int = 0b1011101


def lfsr_sequence(n_bits: int, seed: int = DEFAULT_SEED) -> NDArray[np.uint8]:
    """First ``n_bits`` of the x⁷+x⁴+1 LFSR stream."""
    if n_bits < 0:
        raise ConfigurationError("n_bits must be non-negative")
    if not 0 < seed < 128:
        raise ConfigurationError("seed must be a non-zero 7-bit value")
    state = seed
    out = np.empty(n_bits, dtype=np.uint8)
    for i in range(n_bits):
        bit = ((state >> 6) ^ (state >> 3)) & 1
        out[i] = bit
        state = ((state << 1) | bit) & 0x7F
    return out


def scramble(bits: ArrayLike, seed: int = DEFAULT_SEED) -> NDArray[np.uint8]:
    """XOR a bit stream with the LFSR sequence."""
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    if np.any(arr > 1):
        raise ConfigurationError("bits must be 0/1")
    return arr ^ lfsr_sequence(arr.size, seed)


def descramble(bits: ArrayLike, seed: int = DEFAULT_SEED) -> NDArray[np.uint8]:
    """Inverse of :func:`scramble` (additive scrambling is an involution)."""
    return scramble(bits, seed)
