"""PHY layer: OAQFM/OOK modulation, framing, BER math."""

from repro.phy.oaqfm import (
    OaqfmSymbol,
    bits_to_symbols,
    symbols_to_bits,
    oaqfm_waveform,
    tone_gates,
)
from repro.phy.ook import ook_waveform, decode_ook_levels
from repro.phy.framing import (
    SYNC_WORD_BITS,
    crc16_ccitt,
    bytes_to_bits,
    bits_to_bytes,
    encode_frame,
    decode_frame,
    find_sync,
    FrameHeader,
)
from repro.phy.dense_oaqfm import (
    DenseOaqfmScheme,
    dense_symbol_levels,
    decode_dense_levels,
)
from repro.phy.scrambling import scramble, descramble, lfsr_sequence
from repro.phy.coding import (
    hamming74_encode,
    hamming74_decode,
    interleave,
    deinterleave,
    code_rate,
)
from repro.phy.ber import (
    q_function,
    ook_matched_filter_ber,
    ook_noncoherent_ber,
    snr_for_target_ber,
    measure_ber,
)

__all__ = [
    "OaqfmSymbol",
    "bits_to_symbols",
    "symbols_to_bits",
    "oaqfm_waveform",
    "tone_gates",
    "ook_waveform",
    "decode_ook_levels",
    "SYNC_WORD_BITS",
    "crc16_ccitt",
    "bytes_to_bits",
    "bits_to_bytes",
    "encode_frame",
    "decode_frame",
    "find_sync",
    "FrameHeader",  # milback: disable=ML014 — public result type
    "DenseOaqfmScheme",
    "dense_symbol_levels",
    "decode_dense_levels",
    "scramble",
    "descramble",
    "lfsr_sequence",
    "hamming74_encode",
    "hamming74_decode",
    "interleave",
    "deinterleave",
    "code_rate",
    "q_function",
    "ook_matched_filter_ber",
    "ook_noncoherent_ber",
    "snr_for_target_ber",
    "measure_ber",
]
