"""Bit-level framing: sync word, length field, CRC-16.

The paper fixes the payload length by out-of-band agreement (§7); this
layer adds the minimal structure a deployed stack needs on top — a sync
word for symbol alignment, an explicit length, and a CRC-16/CCITT so
corrupted payloads are detected rather than silently delivered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Final

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.errors import ProtocolError

__all__ = [
    "SYNC_WORD_BITS",
    "crc16_ccitt",
    "bytes_to_bits",
    "bits_to_bytes",
    "encode_frame",
    "decode_frame",
    "FrameHeader",
    "find_sync",
]

#: Barker-13-derived sync pattern, good autocorrelation for alignment.
SYNC_WORD_BITS: Final[NDArray[np.uint8]] = np.array(
    [1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1, 0, 1, 1], dtype=np.uint8
)

_CRC_POLY: Final[int] = 0x1021
_CRC_INIT: Final[int] = 0xFFFF

#: Maximum payload the 16-bit length field admits.
MAX_PAYLOAD_BYTES: Final[int] = 65_535


def crc16_ccitt(data: bytes, init: int = _CRC_INIT) -> int:
    """CRC-16/CCITT-FALSE over ``data``."""
    crc = init
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _CRC_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def bytes_to_bits(data: bytes) -> NDArray[np.uint8]:
    """MSB-first bit expansion."""
    if not data:
        return np.zeros(0, dtype=np.uint8)
    arr = np.frombuffer(data, dtype=np.uint8)
    return np.unpackbits(arr)


def bits_to_bytes(bits: ArrayLike) -> bytes:
    """Inverse of :func:`bytes_to_bits`; length must be a multiple of 8."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size % 8:
        raise ProtocolError(f"bit count {arr.size} is not a whole number of bytes")
    return np.packbits(arr).tobytes()


@dataclass(frozen=True)
class FrameHeader:
    """Decoded frame metadata."""

    payload_length: int
    crc_ok: bool


def encode_frame(payload: bytes) -> NDArray[np.uint8]:
    """sync(16) | length(16) | payload | crc16 as a bit vector."""
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"payload too long ({len(payload)} bytes)")
    length_field = len(payload).to_bytes(2, "big")
    crc = crc16_ccitt(length_field + payload).to_bytes(2, "big")
    body_bits = bytes_to_bits(length_field + payload + crc)
    return np.concatenate([SYNC_WORD_BITS, body_bits])


def find_sync(bits: ArrayLike, max_errors: int = 1) -> int:
    """Index right after the best sync-word match.

    Tolerates up to ``max_errors`` bit flips inside the sync pattern so a
    noisy first symbol doesn't lose the whole frame.
    """
    arr = np.asarray(bits, dtype=np.uint8)
    n = SYNC_WORD_BITS.size
    if arr.size < n:
        raise ProtocolError("bit stream shorter than the sync word")
    best_pos, best_err = -1, n + 1
    limit = arr.size - n
    for pos in range(limit + 1):
        err = int(np.count_nonzero(arr[pos : pos + n] != SYNC_WORD_BITS))
        if err < best_err:
            best_pos, best_err = pos, err
            if err == 0:
                break
    if best_err > max_errors:
        raise ProtocolError(f"no sync word found (best match has {best_err} errors)")
    return best_pos + n


def decode_frame(bits: ArrayLike, max_sync_errors: int = 1) -> tuple[FrameHeader, bytes]:
    """Parse a frame out of a received bit stream.

    Returns the header (with CRC verdict) and the payload bytes. Raises
    :class:`ProtocolError` when no sync is found or the stream truncates
    mid-frame; CRC failures are *reported*, not raised, so callers can
    count them as bit-error statistics.
    """
    stream = np.asarray(bits, dtype=np.uint8)
    start = find_sync(stream, max_sync_errors)
    rest = stream[start:]
    if rest.size < 16:
        raise ProtocolError("frame truncated before length field")
    length = int.from_bytes(bits_to_bytes(rest[:16]), "big")
    need = 16 + 8 * length + 16
    if rest.size < need:
        raise ProtocolError(
            f"frame truncated: need {need} bits after sync, have {rest.size}"
        )
    length_field = bits_to_bytes(rest[:16])
    payload = bits_to_bytes(rest[16 : 16 + 8 * length])
    crc_rx = int.from_bytes(bits_to_bytes(rest[16 + 8 * length : need]), "big")
    crc_ok = crc16_ccitt(length_field + payload) == crc_rx
    return FrameHeader(payload_length=length, crc_ok=crc_ok), payload
