"""Single-carrier on-off keying — the normal-incidence fallback (§6.2).

When the node faces the AP squarely, the dual-port FSA's two alignment
frequencies coincide (f_A = f_B), so OAQFM's two-tone alphabet collapses
and both sides fall back to plain OOK on the single shared carrier at
1 bit per symbol.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.typing import NDArray

from repro.dsp.modulation import threshold_slice
from repro.dsp.signal import Signal
from repro.dsp.waveforms import ook_stream
from repro.errors import ConfigurationError

__all__ = ["ook_waveform", "decode_ook_levels"]


def ook_waveform(
    bits: Sequence[int],
    carrier_hz: float,
    symbol_rate_hz: float,
    sample_rate_hz: float,
    amplitude: float = 1.0,
) -> Signal:
    """OOK waveform at 1 bit/symbol on a single carrier."""
    if symbol_rate_hz <= 0:
        raise ConfigurationError("symbol rate must be positive")
    return ook_stream(
        list(bits),
        carrier_hz,
        1.0 / symbol_rate_hz,
        sample_rate_hz,
        amplitude,
        center_frequency_hz=carrier_hz,
    )


def decode_ook_levels(
    levels: NDArray[np.float64], threshold: float | None = None
) -> NDArray[np.uint8]:
    """Slice integrated symbol levels into bits."""
    sliced: NDArray[np.uint8] = threshold_slice(levels, threshold)
    return sliced
