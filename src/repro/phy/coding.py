"""Forward error correction: Hamming(7,4) with block interleaving.

MilBack's paper transmits raw bits; a deployed stack wants a thin FEC
layer to convert the steep BER-vs-SNR cliff into extra range. Hamming
(7,4) corrects one error per codeword at 4/7 rate — enough to matter at
the 8–10 m edge — and the interleaver spreads the bursty errors that a
fading beam edge produces.
"""

from __future__ import annotations

from typing import Final

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.errors import ConfigurationError, DecodingError

__all__ = [
    "hamming74_encode",
    "hamming74_decode",
    "interleave",
    "deinterleave",
    "code_rate",
]

# Generator matrix (systematic): codeword = [d1 d2 d3 d4 p1 p2 p3].
_G = np.array(
    [
        [1, 0, 0, 0, 1, 1, 0],
        [0, 1, 0, 0, 1, 0, 1],
        [0, 0, 1, 0, 0, 1, 1],
        [0, 0, 0, 1, 1, 1, 1],
    ],
    dtype=np.uint8,
)

# Parity-check matrix consistent with _G.
_H = np.array(
    [
        [1, 1, 0, 1, 1, 0, 0],
        [1, 0, 1, 1, 0, 1, 0],
        [0, 1, 1, 1, 0, 0, 1],
    ],
    dtype=np.uint8,
)

#: Syndrome (as integer) → error position in the 7-bit codeword.
_SYNDROME_TO_POSITION: Final[dict[int, int]] = {}
for _pos in range(7):
    _e = np.zeros(7, dtype=np.uint8)
    _e[_pos] = 1
    _s = (_H @ _e) % 2
    _SYNDROME_TO_POSITION[int(_s[0]) * 4 + int(_s[1]) * 2 + int(_s[2])] = _pos


def code_rate() -> float:
    """Information bits per coded bit (4/7)."""
    return 4.0 / 7.0


def hamming74_encode(bits: ArrayLike) -> NDArray[np.uint8]:
    """Encode a bit stream into Hamming(7,4) codewords.

    Input is zero-padded to a multiple of 4 data bits.
    """
    data = np.asarray(bits, dtype=np.uint8).ravel()
    if data.size == 0:
        raise ConfigurationError("no bits to encode")
    if np.any(data > 1):
        raise ConfigurationError("bits must be 0/1")
    pad = (-data.size) % 4
    if pad:
        data = np.concatenate([data, np.zeros(pad, dtype=np.uint8)])
    blocks = data.reshape(-1, 4)
    return ((blocks @ _G) % 2).reshape(-1).astype(np.uint8)


def hamming74_decode(coded: ArrayLike) -> tuple[NDArray[np.uint8], int]:
    """Decode codewords, correcting up to one bit error each.

    Returns ``(data_bits, n_corrected)``.
    """
    arr = np.asarray(coded, dtype=np.uint8).ravel()
    if arr.size == 0 or arr.size % 7:
        raise DecodingError(f"coded length {arr.size} is not a multiple of 7")
    words = arr.reshape(-1, 7).copy()
    syndromes = (words @ _H.T) % 2
    corrected = 0
    for i, syndrome in enumerate(syndromes):
        key = int(syndrome[0]) * 4 + int(syndrome[1]) * 2 + int(syndrome[2])
        if key:
            position = _SYNDROME_TO_POSITION[key]
            words[i, position] ^= 1
            corrected += 1
    return words[:, :4].reshape(-1).astype(np.uint8), corrected


def interleave(bits: ArrayLike, depth: int = 8) -> NDArray[np.uint8]:
    """Block interleaver: write rows of ``depth``, read columns.

    Zero-pads to a full block; pair with :func:`deinterleave` at the
    same depth and trim to the original length.
    """
    if depth < 1:
        raise ConfigurationError("depth must be >= 1")
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    if arr.size == 0:
        raise ConfigurationError("nothing to interleave")
    pad = (-arr.size) % depth
    if pad:
        arr = np.concatenate([arr, np.zeros(pad, dtype=np.uint8)])
    return arr.reshape(-1, depth).T.reshape(-1)


def deinterleave(bits: ArrayLike, depth: int = 8) -> NDArray[np.uint8]:
    """Inverse of :func:`interleave` (length must be a depth multiple)."""
    if depth < 1:
        raise ConfigurationError("depth must be >= 1")
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    if arr.size == 0 or arr.size % depth:
        raise DecodingError(f"length {arr.size} is not a multiple of depth {depth}")
    return arr.reshape(depth, -1).T.reshape(-1)
