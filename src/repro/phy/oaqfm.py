"""Orientation Assisted Quadrature Frequency Modulation (OAQFM), paper §6.2.

OAQFM represents 2 bits per symbol by the presence/absence of two tones
whose frequencies f_A, f_B are *chosen from the node's orientation* so
that each tone lands exclusively on one FSA port:

    bits "00" → neither tone      bits "10" → tone at f_A only
    bits "01" → tone at f_B only  bits "11" → both tones

Because each port sees only "its" tone, an envelope detector per port
decodes the pair without any mixer or oscillator — the whole point of
the scheme. When the node faces the AP squarely, f_A = f_B and the
system degrades to single-tone OOK (see :mod:`repro.phy.ook`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from numpy.typing import NDArray

from repro.antennas.dual_port_fsa import TonePair
from repro.dsp.signal import Signal
from repro.dsp.waveforms import tone
from repro.errors import ConfigurationError, DecodingError

__all__ = [
    "OaqfmSymbol",
    "bits_to_symbols",
    "symbols_to_bits",
    "oaqfm_waveform",
    "tone_gates",
]


@dataclass(frozen=True)
class OaqfmSymbol:
    """One OAQFM symbol: which of the two tones is on."""

    tone_a_on: bool
    tone_b_on: bool

    @classmethod
    def from_bits(cls, bit_a: int, bit_b: int) -> "OaqfmSymbol":
        """Map a bit pair to a symbol (first bit rides tone A)."""
        return cls(bool(bit_a), bool(bit_b))

    def to_bits(self) -> tuple[int, int]:
        """Inverse of :meth:`from_bits`."""
        return (int(self.tone_a_on), int(self.tone_b_on))

    @property
    def label(self) -> str:
        """The paper's "00"/"01"/"10"/"11" notation."""
        return f"{int(self.tone_a_on)}{int(self.tone_b_on)}"


def bits_to_symbols(bits: Sequence[int]) -> list[OaqfmSymbol]:
    """Pack a bit sequence into OAQFM symbols, zero-padding odd lengths."""
    if len(bits) == 0:
        raise ConfigurationError("no bits to modulate")
    padded = list(int(b) for b in bits)
    if any(b not in (0, 1) for b in padded):
        raise ConfigurationError("bits must be 0/1")
    if len(padded) % 2:
        padded.append(0)
    return [
        OaqfmSymbol.from_bits(padded[i], padded[i + 1])
        for i in range(0, len(padded), 2)
    ]


def symbols_to_bits(symbols: Sequence[OaqfmSymbol]) -> NDArray[np.uint8]:
    """Unpack symbols back into the interleaved bit vector."""
    if not symbols:
        raise DecodingError("no symbols to unpack")
    bits = np.empty(2 * len(symbols), dtype=np.uint8)
    for k, symbol in enumerate(symbols):
        bits[2 * k], bits[2 * k + 1] = symbol.to_bits()
    return bits


def tone_gates(
    symbols: Sequence[OaqfmSymbol],
    samples_per_symbol: int,
) -> tuple[NDArray[np.float64], NDArray[np.float64]]:
    """Per-sample on/off gates for tone A and tone B."""
    if samples_per_symbol < 1:
        raise ConfigurationError("samples_per_symbol must be >= 1")
    gate_a = np.repeat([1.0 if s.tone_a_on else 0.0 for s in symbols], samples_per_symbol)
    gate_b = np.repeat([1.0 if s.tone_b_on else 0.0 for s in symbols], samples_per_symbol)
    return gate_a, gate_b


def oaqfm_waveform(
    bits: Sequence[int],
    pair: TonePair,
    symbol_rate_hz: float,
    sample_rate_hz: float,
    amplitude: float = 1.0,
    center_frequency_hz: float | None = None,
) -> Signal:
    """Synthesize the AP's downlink OAQFM waveform for ``bits``.

    Each tone is gated by its bit stream; both tones ride on one complex
    baseband centered between them (or at ``center_frequency_hz``).
    """
    symbols = bits_to_symbols(bits)
    samples_per_symbol = int(round(sample_rate_hz / symbol_rate_hz))
    if samples_per_symbol < 4:
        raise ConfigurationError(
            "fewer than 4 samples per symbol; raise the sample rate"
        )
    center_hz = (
        0.5 * (pair.freq_a_hz + pair.freq_b_hz)
        if center_frequency_hz is None
        else center_frequency_hz
    )
    duration = len(symbols) * samples_per_symbol / sample_rate_hz
    carrier_a = tone(pair.freq_a_hz, duration, sample_rate_hz, amplitude, center_hz)
    carrier_b = tone(pair.freq_b_hz, duration, sample_rate_hz, amplitude, center_hz)
    gate_a, gate_b = tone_gates(symbols, samples_per_symbol)
    n = carrier_a.samples.size
    samples = carrier_a.samples * gate_a[:n] + carrier_b.samples * gate_b[:n]
    return Signal(samples, sample_rate_hz, center_hz, 0.0)
