"""Physical constants and MilBack system-wide defaults.

Values mirror Section 8 (Implementation) of the paper wherever the paper
states them; everything else is a documented engineering default.
"""

from __future__ import annotations

from typing import Final

# milback: disable-file=ML014 — paper-derived reference constants are API even when unconsumed
__all__ = [
    "SPEED_OF_LIGHT",
    "BOLTZMANN",
    "T0_KELVIN",
    "THERMAL_NOISE_DBM_HZ",
    "BAND_START_HZ",
    "BAND_STOP_HZ",
    "BAND_WIDTH_HZ",
    "BAND_CENTER_HZ",
    "VXG_MAX_SPAN_HZ",
    "PATCH_CENTERS_HZ",
    "AP_TX_POWER_DBM",
    "AP_HORN_GAIN_DBI",
    "FIELD1_CHIRP_DURATION_S",
    "FIELD2_CHIRP_DURATION_S",
    "FIELD2_NUM_CHIRPS",
    "LOCALIZATION_TOGGLE_RATE_HZ",
    "NODE_ADC_RATE_HZ",
    "NODE_POWER_DOWNLINK_W",
    "NODE_POWER_UPLINK_W",
    "MCU_POWER_W",
    "MAX_DOWNLINK_RATE_BPS",
    "MAX_UPLINK_RATE_BPS",
    "MMTAG_ENERGY_PER_BIT_J",
    "FSA_SCAN_COVERAGE_DEG",
    "FSA_PEAK_GAIN_DBI",
    "FSA_BEAMWIDTH_DEG",
]

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT: Final[float] = 299_792_458.0

#: Boltzmann constant [J/K].
BOLTZMANN: Final[float] = 1.380649e-23

#: Reference temperature for thermal noise [K].
T0_KELVIN: Final[float] = 290.0

#: Thermal noise power spectral density at T0 [dBm/Hz] (kT at 290 K).
THERMAL_NOISE_DBM_HZ: Final[float] = -173.975

# --- MilBack band plan (paper §8) -------------------------------------------

#: Lower edge of the FMCW sweep [Hz].
BAND_START_HZ: Final[float] = 26.5e9

#: Upper edge of the FMCW sweep [Hz].
BAND_STOP_HZ: Final[float] = 29.5e9

#: Total FMCW sweep bandwidth [Hz] (3 GHz).
BAND_WIDTH_HZ: Final[float] = BAND_STOP_HZ - BAND_START_HZ

#: Band center [Hz].
BAND_CENTER_HZ: Final[float] = 0.5 * (BAND_START_HZ + BAND_STOP_HZ)

#: The paper's signal generator spans at most 2 GHz, so the 3 GHz sweep is
#: patched from two 2 GHz chirps centered here (paper footnote 2).
VXG_MAX_SPAN_HZ: Final[float] = 2.0e9
PATCH_CENTERS_HZ: Final[tuple[float, float]] = (27.25e9, 28.75e9)

# --- AP parameters (paper §8) ------------------------------------------------

#: AP transmit power [dBm].
AP_TX_POWER_DBM: Final[float] = 27.0

#: Gain of the Mi-Wave 261(34)-20/595 horn antennas [dBi].
AP_HORN_GAIN_DBI: Final[float] = 20.0

#: Field 1 (triangular, node-facing) chirp duration [s].
FIELD1_CHIRP_DURATION_S: Final[float] = 45e-6

#: Field 2 (sawtooth, localization) chirp duration [s].
FIELD2_CHIRP_DURATION_S: Final[float] = 18e-6

#: Number of sawtooth chirps in preamble Field 2 (paper §7).
FIELD2_NUM_CHIRPS: Final[int] = 5

#: Node reflective/absorptive toggle rate during localization [Hz] (§5.1).
LOCALIZATION_TOGGLE_RATE_HZ: Final[float] = 10e3

# --- Node parameters (paper §§4, 8, 9.6) -------------------------------------

#: MCU ADC sampling rate at the node [Hz] (§9.3).
NODE_ADC_RATE_HZ: Final[float] = 1e6

#: Node power draw during localization and downlink [W] (§9.6).
NODE_POWER_DOWNLINK_W: Final[float] = 18e-3

#: Node power draw during uplink [W] (§9.6).
NODE_POWER_UPLINK_W: Final[float] = 32e-3

#: Typical MCU power, excluded from the node budget in the paper [W].
MCU_POWER_W: Final[float] = 5.76e-3

#: Maximum downlink data rate, limited by envelope-detector rise/fall [bit/s].
MAX_DOWNLINK_RATE_BPS: Final[float] = 36e6

#: Maximum uplink data rate, limited by switch toggle speed [bit/s].
MAX_UPLINK_RATE_BPS: Final[float] = 160e6

#: mmTag (SIGCOMM'21) uplink-only energy efficiency for comparison [J/bit].
MMTAG_ENERGY_PER_BIT_J: Final[float] = 2.4e-9

# --- FSA defaults (paper §2, §9.1) -------------------------------------------

#: Azimuth scan coverage of the dual-port FSA across the band [deg].
FSA_SCAN_COVERAGE_DEG: Final[float] = 60.0

#: Approximate FSA peak gain from Fig. 10 [dBi].
FSA_PEAK_GAIN_DBI: Final[float] = 13.0

#: Approximate FSA beam width (§9.3) [deg].
FSA_BEAMWIDTH_DEG: Final[float] = 10.0
